package rmat

import (
	"testing"

	"approxmatch/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Graph500(8, 7))
	b := Generate(Graph500(8, 7))
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(graph.VertexID(v)) != b.Label(graph.VertexID(v)) {
			t.Fatalf("labels diverge at %d", v)
		}
	}
	c := Generate(Graph500(8, 8))
	if c.NumEdges() == a.NumEdges() {
		t.Log("different seeds produced equal edge counts (possible but unlikely)")
	}
}

func TestGenerateShape(t *testing.T) {
	g := Generate(Graph500(10, 1))
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// Skew: R-MAT hubs should dwarf the average degree.
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Errorf("no skew: max=%d avg=%.1f", s.MaxDegree, s.AvgDegree)
	}
	// Dedup: undirected edge count below the raw directed total.
	if s.NumEdges >= 1024*16 {
		t.Errorf("no dedup: m=%d", s.NumEdges)
	}
}

func TestDegreeLabel(t *testing.T) {
	cases := []struct {
		d    int
		want graph.Label
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1000, 10},
	}
	for _, c := range cases {
		if got := DegreeLabel(c.d); got != c.want {
			t.Errorf("DegreeLabel(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestWithDegreeLabelsConsistent(t *testing.T) {
	g := Generate(Graph500(9, 3))
	for v := 0; v < g.NumVertices(); v++ {
		want := DegreeLabel(g.Degree(graph.VertexID(v)))
		if g.Label(graph.VertexID(v)) != want {
			t.Fatalf("vertex %d: label %d, degree %d wants %d",
				v, g.Label(graph.VertexID(v)), g.Degree(graph.VertexID(v)), want)
		}
	}
	// Label distribution stability across scales (the paper's reason for
	// degree-derived labels): the most frequent label should be similar at
	// neighboring scales.
	top := func(g *graph.Graph) graph.Label {
		freq := g.LabelFrequencies()
		var best graph.Label
		var bestC int64 = -1
		for l, c := range freq {
			if c > bestC {
				best, bestC = l, c
			}
		}
		return best
	}
	t9, t10 := top(Generate(Graph500(9, 3))), top(Generate(Graph500(10, 3)))
	if d := int(t9) - int(t10); d < -1 || d > 1 {
		t.Errorf("top label unstable across scales: %d vs %d", t9, t10)
	}
}
