// Package rmat generates R-MAT graphs with Graph500 parameters
// (a=0.57, b=0.19, c=0.19, d=0.05, edge factor 16), the synthetic workload
// of the paper's weak-scaling experiments (§5.1), and derives vertex labels
// from degrees exactly as the paper does: ℓ(v) = ⌈log2(d(v)+1)⌉, which keeps
// the label distribution stable as the graph scales.
package rmat

import (
	"math"
	"math/rand"

	"approxmatch/internal/graph"
)

// Params configures the recursive-matrix generator.
type Params struct {
	// Scale gives 2^Scale vertices.
	Scale int
	// EdgeFactor is directed edges per vertex before symmetrization
	// (Graph500 uses 16).
	EdgeFactor int
	// A, B, C are the recursive quadrant probabilities (D = 1-A-B-C).
	A, B, C float64
	// Seed makes generation deterministic.
	Seed int64
	// Noise perturbs quadrant probabilities per level (Graph500-style
	// smoothing); 0 disables.
	Noise float64
}

// Graph500 returns the standard Graph500 parameters at the given scale.
func Graph500(scale int, seed int64) Params {
	return Params{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, Seed: seed, Noise: 0.1}
}

// Generate produces the undirected, deduplicated R-MAT graph with
// degree-derived labels.
func Generate(p Params) *graph.Graph {
	n := 1 << uint(p.Scale)
	rng := rand.New(rand.NewSource(p.Seed))
	b := graph.NewBuilder(n)
	m := n * p.EdgeFactor
	for i := 0; i < m; i++ {
		u, v := sampleEdge(rng, p)
		b.AddEdge(graph.VertexID(u), graph.VertexID(v))
	}
	g := b.Build()
	return WithDegreeLabels(g)
}

// sampleEdge draws one directed edge by recursive quadrant descent.
func sampleEdge(rng *rand.Rand, p Params) (int, int) {
	u, v := 0, 0
	a, bq, c := p.A, p.B, p.C
	for bit := p.Scale - 1; bit >= 0; bit-- {
		r := rng.Float64()
		switch {
		case r < a:
			// top-left: nothing to add
		case r < a+bq:
			v |= 1 << uint(bit)
		case r < a+bq+c:
			u |= 1 << uint(bit)
		default:
			u |= 1 << uint(bit)
			v |= 1 << uint(bit)
		}
		if p.Noise > 0 {
			// Multiplicative smoothing keeps expected proportions.
			a *= 1 - p.Noise/2 + p.Noise*rng.Float64()
			bq *= 1 - p.Noise/2 + p.Noise*rng.Float64()
			c *= 1 - p.Noise/2 + p.Noise*rng.Float64()
			norm := (a + bq + c) / (p.A + p.B + p.C)
			a /= norm
			bq /= norm
			c /= norm
		}
	}
	return u, v
}

// WithDegreeLabels returns a copy of g labeled ℓ(v) = ⌈log2(d(v)+1)⌉.
func WithDegreeLabels(g *graph.Graph) *graph.Graph {
	labels := make([]graph.Label, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		labels[v] = DegreeLabel(g.Degree(graph.VertexID(v)))
	}
	return graph.FromEdges(labels, g.Edges())
}

// DegreeLabel computes ⌈log2(d+1)⌉.
func DegreeLabel(d int) graph.Label {
	if d <= 0 {
		return 0
	}
	return graph.Label(math.Ceil(math.Log2(float64(d) + 1)))
}
