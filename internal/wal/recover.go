package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"approxmatch/internal/graph"
)

// Recovery reports what Open reconstructed.
type Recovery struct {
	// Graph is the recovered graph (checkpoint or seed, plus replayed
	// tail). Internal ids and the external-id table match the original
	// process's.
	Graph *graph.Graph
	// Epoch is the snapshot epoch the recovered graph corresponds to;
	// the SnapshotStore must resume from it.
	Epoch uint64
	// CheckpointEpoch is the epoch of the checkpoint used, 0 if the
	// seed graph was the base.
	CheckpointEpoch uint64
	// FromCheckpoint reports whether a checkpoint bounded the replay.
	FromCheckpoint bool
	// Replayed is the number of tail records applied.
	Replayed int
	// TornTail reports whether a torn tail was truncated.
	TornTail bool
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Open recovers the log directory and returns a Log positioned to accept
// the next epoch. seed is the process's freshly loaded graph (already
// relabeled); it is the replay base when no checkpoint exists.
//
// Failure semantics follow the write path's guarantees:
//
//   - A short or checksum-failing record in the LAST segment is a torn
//     tail — the only corruption a crash can legally produce — and is
//     truncated away.
//   - The same damage in any earlier segment, a CRC-valid record that
//     fails to decode or apply, or an epoch gap, cannot come from a
//     crash. Open refuses rather than silently serving a wrong graph.
func Open(opts Options, seed *graph.Graph) (*Log, *Recovery, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{opts: opts}
	rec := &Recovery{}

	ckpts, err := listCheckpointFiles(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	base := seed
	var baseEpoch uint64
	if len(ckpts) > 0 {
		newest := ckpts[len(ckpts)-1]
		g, ep, err := readCheckpointFile(newest.path, opts.Limits)
		if err != nil {
			return nil, nil, err
		}
		if ep != newest.epoch {
			return nil, nil, fmt.Errorf("wal: checkpoint %s claims epoch %d", filepath.Base(newest.path), ep)
		}
		if seed != nil && seed.NumVertices() != g.NumVertices() {
			return nil, nil, fmt.Errorf("wal: checkpoint has %d vertices, seed graph %d — wrong WAL dir for this graph",
				g.NumVertices(), seed.NumVertices())
		}
		base, baseEpoch = g, ep
		rec.FromCheckpoint = true
		rec.CheckpointEpoch = ep
	}
	if base == nil {
		return nil, nil, fmt.Errorf("wal: no seed graph and no checkpoint in %s", opts.Dir)
	}

	segs, err := listSegmentFiles(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	cur, curEpoch := base, baseEpoch
	for i, s := range segs {
		last := i == len(segs)-1
		// A segment wholly covered by the checkpoint (the next segment
		// starts at or before the first epoch we need) carries nothing.
		if !last && segs[i+1].firstEpoch <= baseEpoch+1 {
			continue
		}
		g, ep, replayed, torn, err := replaySegment(s, last, cur, curEpoch, l)
		if err != nil {
			return nil, nil, err
		}
		cur, curEpoch = g, ep
		rec.Replayed += replayed
		if torn {
			rec.TornTail = true
			break
		}
	}

	l.lastEpoch = curEpoch
	l.ckptEpoch = baseEpoch
	l.sinceCkpt = int(curEpoch - baseEpoch)
	l.c.lastEpoch.Store(curEpoch)
	l.c.replayed.Store(int64(rec.Replayed))
	rec.Graph = cur
	rec.Epoch = curEpoch
	rec.Elapsed = time.Since(start)
	l.c.recoveryNanos.Store(rec.Elapsed.Nanoseconds())
	l.startSyncLoop()
	return l, rec, nil
}

// replaySegment applies one segment's records on top of (cur, curEpoch).
// For the last segment, torn damage truncates the file at the damaged
// record's boundary; for earlier segments it is a hard error.
func replaySegment(s segFile, last bool, cur *graph.Graph, curEpoch uint64, l *Log) (*graph.Graph, uint64, int, bool, error) {
	b, err := os.ReadFile(s.path)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("wal: read segment: %w", err)
	}
	name := filepath.Base(s.path)
	fe, err := parseSegmentHeader(b)
	if err != nil || fe != s.firstEpoch {
		if !last {
			if err == nil {
				err = fmt.Errorf("wal: segment %s header epoch %d does not match name", name, fe)
			}
			return nil, 0, 0, false, err
		}
		// A torn segment header can only happen on the newest segment:
		// the file was created but the crash landed inside the header
		// write. It holds no records; discard it whole.
		if rmErr := os.Remove(s.path); rmErr != nil {
			return nil, 0, 0, false, fmt.Errorf("wal: discard torn segment %s: %w", name, rmErr)
		}
		l.c.tornTails.Add(1)
		return cur, curEpoch, 0, true, nil
	}

	chainStarted := false
	replayed := 0
	off := segHeaderLen
	for off < len(b) {
		torn := func(why string) (*graph.Graph, uint64, int, bool, error) {
			if !last {
				return nil, 0, 0, false, fmt.Errorf("wal: mid-log corruption in %s at offset %d: %s", name, off, why)
			}
			trunc := int64(off)
			if trunc == segHeaderLen {
				// No surviving records: drop the file so a post-recovery
				// segment named for the same first epoch cannot collide.
				if err := os.Remove(s.path); err != nil {
					return nil, 0, 0, false, fmt.Errorf("wal: discard torn segment %s: %w", name, err)
				}
			} else if err := os.Truncate(s.path, trunc); err != nil {
				return nil, 0, 0, false, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
			}
			l.c.tornTails.Add(1)
			return cur, curEpoch, replayed, true, nil
		}
		rem := b[off:]
		if len(rem) < recHeaderLen {
			return torn("short record header")
		}
		payloadLen := int(binary.LittleEndian.Uint32(rem))
		wantCRC := binary.LittleEndian.Uint32(rem[4:])
		if payloadLen < 8 || payloadLen > maxRecordLen {
			return torn(fmt.Sprintf("implausible record length %d", payloadLen))
		}
		if len(rem)-recHeaderLen < payloadLen {
			return torn("short record payload")
		}
		payload := rem[recHeaderLen : recHeaderLen+payloadLen]
		if got := crc32.Checksum(payload, crcTable); got != wantCRC {
			return torn(fmt.Sprintf("crc mismatch (got %08x want %08x)", got, wantCRC))
		}
		// From here on the record is checksum-valid: damage is semantic,
		// not torn, and is always refused.
		epoch, d, err := decodeRecordPayload(payload)
		if err != nil {
			return nil, 0, 0, false, fmt.Errorf("wal: %s offset %d: %w", name, off, err)
		}
		switch {
		case !chainStarted && epoch <= curEpoch:
			// Pre-checkpoint record in a partially covered segment.
		case epoch == curEpoch+1:
			ng, _, err := graph.ApplyDelta(cur, d)
			if err != nil {
				return nil, 0, 0, false, fmt.Errorf("wal: %s epoch %d replay: %w", name, epoch, err)
			}
			cur, curEpoch = ng, epoch
			chainStarted = true
			replayed++
		default:
			return nil, 0, 0, false, fmt.Errorf("wal: %s offset %d: epoch %d breaks chain at %d (replaying a stale or duplicated log?)",
				name, off, epoch, curEpoch)
		}
		off += recHeaderLen + payloadLen
	}
	if off == segHeaderLen && last {
		// Header-only segment (crash between rotation and first append):
		// nothing durable inside; drop it to free its name.
		if err := os.Remove(s.path); err != nil {
			return nil, 0, 0, false, fmt.Errorf("wal: discard empty segment %s: %w", name, err)
		}
	}
	return cur, curEpoch, replayed, false, nil
}
