package wal

import (
	"errors"
	"fmt"
	"os"
)

// ErrInjected marks failures produced by FaultFile; tests can
// errors.Is against it.
var ErrInjected = errors.New("wal: injected fault")

// FaultSpec is a deterministic fault schedule for one file, in the
// style of dist.Faults: the differential suites derive the ordinals
// from a seeded RNG so every failure is replayable from its seed.
//
// Ordinals are 1-based and count calls on that file. Zero disables the
// class.
type FaultSpec struct {
	// TearWriteAt makes the Nth Write call tear: only TearKeepBytes of
	// the buffer reach the file and the call returns ErrInjected. This
	// models a crash mid-write.
	TearWriteAt   int
	TearKeepBytes int
	// FailSyncAt makes the Nth Sync call return ErrInjected without
	// syncing — a short fsync.
	FailSyncAt int
}

// FaultFile wraps a real file with a FaultSpec. It satisfies wal.File,
// so it plugs into Options.OpenFile underneath an unmodified Log.
type FaultFile struct {
	f      *os.File
	spec   FaultSpec
	writes int
	syncs  int

	// Torn reports whether the torn write fired.
	Torn bool
	// SyncsFailed counts injected fsync failures.
	SyncsFailed int
}

// NewFaultFile creates path (like os.Create) wrapped with spec.
func NewFaultFile(path string, spec FaultSpec) (*FaultFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FaultFile{f: f, spec: spec}, nil
}

func (ff *FaultFile) Write(p []byte) (int, error) {
	ff.writes++
	if ff.spec.TearWriteAt > 0 && ff.writes == ff.spec.TearWriteAt {
		keep := ff.spec.TearKeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		n, err := ff.f.Write(p[:keep])
		if err == nil {
			err = fmt.Errorf("torn write after %d/%d bytes: %w", n, len(p), ErrInjected)
		}
		ff.Torn = true
		return n, err
	}
	return ff.f.Write(p)
}

func (ff *FaultFile) Sync() error {
	ff.syncs++
	if ff.spec.FailSyncAt > 0 && ff.syncs == ff.spec.FailSyncAt {
		ff.SyncsFailed++
		return fmt.Errorf("short fsync: %w", ErrInjected)
	}
	return ff.f.Sync()
}

func (ff *FaultFile) Truncate(size int64) error { return ff.f.Truncate(size) }

func (ff *FaultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *FaultFile) Close() error { return ff.f.Close() }

// CorruptTail simulates what a crash can leave behind in the newest
// segment without going through a Log: cut truncates the file by that
// many bytes (a torn append), and if flip is true the last byte is
// additionally bit-flipped (a corrupt-but-full-length tail). Used by
// the crash-restart suites to damage an on-disk WAL between runs.
func CorruptTail(path string, cut int, flip bool) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := st.Size() - int64(cut)
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	if !flip || size == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], size-1); err != nil {
		return err
	}
	b[0] ^= 0xff
	_, err = f.WriteAt(b[:], size-1)
	return err
}
