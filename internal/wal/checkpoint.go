package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"approxmatch/internal/graph"
)

// Checkpoint file (`ckpt-<epoch hex>.ckpt`):
//
//	[4B magic "ACKP"][1B version = 1][8B LE epoch]
//	[8B LE permLen][permLen × uint32 LE internal→external ids]
//	[graph binary format, see FORMATS.md]
//	[4B LE CRC32C over everything above]
//
// The permutation section exists because amatchd relabels vertices by
// degree at load time and the checkpointed CSR is already in internal
// order: re-deriving the relabel from the checkpoint would be the
// identity and would break external-id translation at the API boundary.
// permLen is either 0 (identity) or exactly n.
//
// Checkpoints are written to a .tmp sibling, fsynced, renamed into
// place, and the directory fsynced — a crash mid-checkpoint leaves at
// worst an ignorable .tmp, never a half-visible checkpoint.

const (
	ckptMagic   = "ACKP"
	ckptVersion = 1
)

// Checkpoint writes a checkpoint of g at epoch and prunes segments and
// checkpoints the new one supersedes. The active segment is fsynced
// first so the checkpoint never claims an epoch whose record is not yet
// durable.
func (l *Log) Checkpoint(g *graph.Graph, epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLocked(g, epoch)
}

// MaybeCheckpoint writes a checkpoint iff CheckpointEvery records have
// accumulated since the last one. Returns whether one was written.
func (l *Log) MaybeCheckpoint(g *graph.Graph, epoch uint64) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.CheckpointEvery <= 0 || l.sinceCkpt < l.opts.CheckpointEvery {
		return false, nil
	}
	return true, l.checkpointLocked(g, epoch)
}

func (l *Log) checkpointLocked(g *graph.Graph, epoch uint64) error {
	if l.closed {
		return fmt.Errorf("wal: checkpoint on closed log")
	}
	if epoch > l.lastEpoch {
		return fmt.Errorf("wal: checkpoint epoch %d ahead of log tail %d", epoch, l.lastEpoch)
	}
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: pre-checkpoint fsync: %w", err)
		}
		l.c.fsyncs.Add(1)
	}
	path := checkpointPath(l.opts.Dir, epoch)
	if err := writeCheckpointFile(l.opts, path, g, epoch); err != nil {
		return err
	}
	l.ckptEpoch = epoch
	l.sinceCkpt = 0
	l.c.checkpoints.Add(1)
	l.pruneLocked(epoch)
	return nil
}

func writeCheckpointFile(opts Options, path string, g *graph.Graph, epoch uint64) error {
	tmp := path + ".tmp"
	f, err := opts.OpenFile(tmp)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint tmp: %w", err)
	}
	crc := crc32.New(crcTable)
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	buf.WriteByte(ckptVersion)
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], epoch)
	buf.Write(u8[:])
	perm := g.ExternalTable()
	binary.LittleEndian.PutUint64(u8[:], uint64(len(perm)))
	buf.Write(u8[:])
	for _, v := range perm {
		var u4 [4]byte
		binary.LittleEndian.PutUint32(u4[:], v)
		buf.Write(u4[:])
	}
	crc.Write(buf.Bytes())
	if _, err := f.Write(buf.Bytes()); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: write checkpoint header: %w", err)
	}
	var body bytes.Buffer
	if err := graph.WriteBinary(&body, g); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: encode checkpoint graph: %w", err)
	}
	crc.Write(body.Bytes())
	if _, err := f.Write(body.Bytes()); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: write checkpoint graph: %w", err)
	}
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], crc.Sum32())
	if _, err := f.Write(u4[:]); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: write checkpoint crc: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	syncDir(opts.Dir)
	return nil
}

// readCheckpointFile loads and verifies a checkpoint. Any failure is a
// hard error: checkpoints become visible only via rename-after-fsync, so
// a corrupt one signals real damage, not a crash artifact.
func readCheckpointFile(path string, lim graph.LoaderLimits) (*graph.Graph, uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	const hdrLen = 4 + 1 + 8 + 8
	if len(b) < hdrLen+4 {
		return nil, 0, fmt.Errorf("wal: checkpoint %s truncated (%d bytes)", filepath.Base(path), len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, 0, fmt.Errorf("wal: checkpoint %s crc mismatch (got %08x want %08x)", filepath.Base(path), got, want)
	}
	if string(body[:4]) != ckptMagic {
		return nil, 0, fmt.Errorf("wal: bad checkpoint magic %q", body[:4])
	}
	if body[4] != ckptVersion {
		return nil, 0, fmt.Errorf("wal: unsupported checkpoint version %d", body[4])
	}
	epoch := binary.LittleEndian.Uint64(body[5:])
	permLen := binary.LittleEndian.Uint64(body[13:])
	rest := body[hdrLen:]
	if permLen > uint64(len(rest)/4) {
		return nil, 0, fmt.Errorf("wal: checkpoint perm table %d entries exceeds file size", permLen)
	}
	var perm []graph.VertexID
	if permLen > 0 {
		perm = make([]graph.VertexID, permLen)
		for i := range perm {
			perm[i] = binary.LittleEndian.Uint32(rest[i*4:])
		}
		rest = rest[permLen*4:]
	}
	g, err := graph.ReadBinaryLimits(bytes.NewReader(rest), lim)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: checkpoint graph: %w", err)
	}
	if perm != nil {
		if err := g.SetExternalTable(perm); err != nil {
			return nil, 0, fmt.Errorf("wal: checkpoint perm table: %w", err)
		}
	}
	return g, epoch, nil
}

// pruneLocked removes checkpoints older than the newest and segments
// whose every record is covered by the checkpoint at epoch. A segment is
// removable only when a later segment exists whose firstEpoch is within
// the checkpoint (so the later segment carries the tail) and it is not
// the active segment. Prune failures are ignored: stale files cost disk,
// not correctness.
func (l *Log) pruneLocked(epoch uint64) {
	segs, err := listSegmentFiles(l.opts.Dir)
	if err == nil {
		for i := 0; i+1 < len(segs); i++ {
			if segs[i+1].firstEpoch <= epoch+1 && segs[i].path != l.path {
				os.Remove(segs[i].path)
			}
		}
	}
	ckpts, err := listCheckpointFiles(l.opts.Dir)
	if err == nil {
		for _, c := range ckpts {
			if c.epoch < epoch {
				os.Remove(c.path)
			}
		}
	}
}

type segFile struct {
	path       string
	firstEpoch uint64 // parsed from the file name
}

type ckptFile struct {
	path  string
	epoch uint64
}

// listSegmentFiles returns wal-*.seg files sorted by the first epoch
// encoded in their names (zero-padded hex, so lexicographic order
// agrees — but parse anyway and sort numerically).
func listSegmentFiles(dir string) ([]segFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		fe, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: malformed segment name %q", name)
		}
		segs = append(segs, segFile{path: filepath.Join(dir, name), firstEpoch: fe})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstEpoch < segs[j].firstEpoch })
	return segs, nil
}

// listCheckpointFiles returns ckpt-*.ckpt files sorted by epoch
// ascending; *.tmp crash leftovers are removed as a side effect.
func listCheckpointFiles(dir string) ([]ckptFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ckpts []ckptFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt")
		ep, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: malformed checkpoint name %q", name)
		}
		ckpts = append(ckpts, ckptFile{path: filepath.Join(dir, name), epoch: ep})
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].epoch < ckpts[j].epoch })
	return ckpts, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
