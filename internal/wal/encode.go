package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"approxmatch/internal/graph"
)

// On-disk layout (documented in docs/FORMATS.md).
//
// Segment file (`wal-<firstEpoch hex>.seg`):
//
//	[4B magic "AWAL"][1B version = 1][8B LE firstEpoch][records ...]
//
// Record:
//
//	[4B LE payloadLen][4B LE CRC32C(payload)][payload]
//	payload = [8B LE epoch][delta bytes]
//
// Delta bytes reuse the PR 7 delta batch vocabulary (insert / delete /
// relabel over a fixed vertex set) in a compact binary form:
//
//	[1B flags (bit0: insert labels present)]
//	[uvarint nInsert][nInsert × (uvarint u, uvarint v)]
//	[if flags&1: nInsert × uvarint edgeLabel]
//	[uvarint nDelete][nDelete × (uvarint u, uvarint v)]
//	[uvarint nRelabel][nRelabel × (uvarint v, uvarint label)]
//
// The CRC covers the payload only: the length prefix is validated by
// bounds checks (a record must fit maxRecordLen and the remaining file),
// so a lying length can never force a large allocation or a misaligned
// parse that still passes the checksum.

const (
	segMagic     = "AWAL"
	segVersion   = 1
	segHeaderLen = 4 + 1 + 8
	recHeaderLen = 4 + 4
	// maxRecordLen bounds one record's payload. A record is one ingest
	// batch; batches are capped at the HTTP layer well below this.
	maxRecordLen = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendSegmentHeader appends a fresh segment's header.
func appendSegmentHeader(dst []byte, firstEpoch uint64) []byte {
	dst = append(dst, segMagic...)
	dst = append(dst, segVersion)
	return binary.LittleEndian.AppendUint64(dst, firstEpoch)
}

// parseSegmentHeader validates a segment header and returns its first
// epoch.
func parseSegmentHeader(b []byte) (firstEpoch uint64, err error) {
	if len(b) < segHeaderLen {
		return 0, fmt.Errorf("wal: segment header truncated (%d bytes)", len(b))
	}
	if string(b[:4]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment magic %q", b[:4])
	}
	if b[4] != segVersion {
		return 0, fmt.Errorf("wal: unsupported segment version %d", b[4])
	}
	return binary.LittleEndian.Uint64(b[5:]), nil
}

// appendDelta appends d in the compact binary delta encoding.
func appendDelta(dst []byte, d *graph.Delta) []byte {
	var flags byte
	if len(d.InsertLabels) > 0 {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(d.Insert)))
	for _, e := range d.Insert {
		dst = binary.AppendUvarint(dst, uint64(e.U))
		dst = binary.AppendUvarint(dst, uint64(e.V))
	}
	if flags&1 != 0 {
		for _, l := range d.InsertLabels {
			dst = binary.AppendUvarint(dst, uint64(l))
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.Delete)))
	for _, e := range d.Delete {
		dst = binary.AppendUvarint(dst, uint64(e.U))
		dst = binary.AppendUvarint(dst, uint64(e.V))
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.Relabels)))
	for _, r := range d.Relabels {
		dst = binary.AppendUvarint(dst, uint64(r.V))
		dst = binary.AppendUvarint(dst, uint64(r.L))
	}
	return dst
}

var errTruncatedDelta = fmt.Errorf("wal: truncated delta encoding")

// getUvarint reads one uvarint off b.
func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTruncatedDelta
	}
	return v, b[n:], nil
}

// getID reads a uvarint that must fit a VertexID/Label.
func getID(b []byte) (uint32, []byte, error) {
	v, rest, err := getUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if v > 1<<32-1 {
		return 0, nil, fmt.Errorf("wal: delta id %d overflows 32 bits", v)
	}
	return uint32(v), rest, nil
}

// getCount reads an element count and bounds it against the bytes that
// remain — every element costs at least minBytes on the wire, so a count
// the remaining payload cannot possibly hold is rejected before any
// allocation proportional to it.
func getCount(b []byte, minBytes int) (int, []byte, error) {
	v, rest, err := getUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if v > uint64(len(rest)/minBytes) {
		return 0, nil, fmt.Errorf("wal: delta count %d exceeds remaining payload", v)
	}
	return int(v), rest, nil
}

// decodeDelta parses the binary delta encoding. Hostile bytes produce an
// error, never a panic or an allocation proportional to a lying count.
func decodeDelta(b []byte) (*graph.Delta, error) {
	if len(b) < 1 {
		return nil, errTruncatedDelta
	}
	flags := b[0]
	if flags&^byte(1) != 0 {
		return nil, fmt.Errorf("wal: unknown delta flags %#x", flags)
	}
	b = b[1:]
	d := &graph.Delta{}
	nIns, b, err := getCount(b, 2)
	if err != nil {
		return nil, err
	}
	d.Insert = make([]graph.Edge, nIns)
	for i := range d.Insert {
		var u, v uint32
		if u, b, err = getID(b); err != nil {
			return nil, err
		}
		if v, b, err = getID(b); err != nil {
			return nil, err
		}
		d.Insert[i] = graph.Edge{U: u, V: v}
	}
	if flags&1 != 0 {
		d.InsertLabels = make([]graph.Label, nIns)
		for i := range d.InsertLabels {
			if d.InsertLabels[i], b, err = getID(b); err != nil {
				return nil, err
			}
		}
	}
	nDel, b, err := getCount(b, 2)
	if err != nil {
		return nil, err
	}
	d.Delete = make([]graph.Edge, nDel)
	for i := range d.Delete {
		var u, v uint32
		if u, b, err = getID(b); err != nil {
			return nil, err
		}
		if v, b, err = getID(b); err != nil {
			return nil, err
		}
		d.Delete[i] = graph.Edge{U: u, V: v}
	}
	nRel, b, err := getCount(b, 2)
	if err != nil {
		return nil, err
	}
	d.Relabels = make([]graph.Relabel, nRel)
	for i := range d.Relabels {
		var v, l uint32
		if v, b, err = getID(b); err != nil {
			return nil, err
		}
		if l, b, err = getID(b); err != nil {
			return nil, err
		}
		d.Relabels[i] = graph.Relabel{V: v, L: l}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after delta", len(b))
	}
	return d, nil
}

// appendRecord appends one framed, checksummed record.
func appendRecord(dst []byte, epoch uint64, d *graph.Delta) []byte {
	payload := binary.LittleEndian.AppendUint64(make([]byte, 0, 64), epoch)
	payload = appendDelta(payload, d)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// decodeRecordPayload splits a CRC-verified payload into epoch and delta.
func decodeRecordPayload(payload []byte) (epoch uint64, d *graph.Delta, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("wal: record payload too short (%d bytes)", len(payload))
	}
	epoch = binary.LittleEndian.Uint64(payload)
	d, err = decodeDelta(payload[8:])
	return epoch, d, err
}
