package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"approxmatch/internal/graph"
)

// testGraph builds a small labeled graph: a 5-cycle plus a chord.
func testGraph() *graph.Graph {
	b := graph.NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(v%3))
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// graphBytes serializes g for structural equality checks (offsets, adj,
// labels, edge labels — everything the binary format covers).
func graphBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randomDelta builds a delta that is valid against g: it deletes one
// present edge, inserts one absent edge, and relabels one vertex, all
// drawn from rng.
func randomDelta(g *graph.Graph, rng *rand.Rand) *graph.Delta {
	n := g.NumVertices()
	b := graph.NewDeltaBuilder()
	// Delete a present edge.
	for {
		u := graph.VertexID(rng.Intn(n))
		nb := g.Neighbors(u)
		if len(nb) == 0 {
			continue
		}
		b.DeleteEdge(u, nb[rng.Intn(len(nb))])
		break
	}
	// Insert an absent edge (distinct endpoints).
	for {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		b.InsertEdge(u, v)
		break
	}
	b.RelabelVertex(graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(8)))
	return b.Delta()
}

// appendSequence applies and logs count random deltas, returning the
// final graph and epoch.
func appendSequence(t *testing.T, l *Log, g *graph.Graph, fromEpoch uint64, count int, rng *rand.Rand) (*graph.Graph, uint64) {
	t.Helper()
	cur, epoch := g, fromEpoch
	for i := 0; i < count; i++ {
		d := randomDelta(cur, rng)
		ng, _, err := graph.ApplyDelta(cur, d)
		if err != nil {
			t.Fatalf("apply delta %d: %v", i, err)
		}
		if err := l.Append(epoch+1, d); err != nil {
			t.Fatalf("append epoch %d: %v", epoch+1, err)
		}
		cur, epoch = ng, epoch+1
	}
	return cur, epoch
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	cases := []*graph.Delta{
		{},
		{Insert: []graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}}},
		{Insert: []graph.Edge{{U: 0, V: 5}}, InsertLabels: []graph.Label{7}},
		{Delete: []graph.Edge{{U: 2, V: 0}}},
		{Relabels: []graph.Relabel{{V: 4, L: 9}, {V: 0, L: 0}}},
		{
			Insert:       []graph.Edge{{U: 1, V: 1 << 30}},
			InsertLabels: []graph.Label{1<<32 - 1},
			Delete:       []graph.Edge{{U: 9, V: 10}},
			Relabels:     []graph.Relabel{{V: 1<<32 - 1, L: 3}},
		},
	}
	for i, d := range cases {
		enc := appendDelta(nil, d)
		got, err := decodeDelta(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		norm := func(d *graph.Delta) *graph.Delta {
			if d.Insert == nil {
				d.Insert = []graph.Edge{}
			}
			if d.Delete == nil {
				d.Delete = []graph.Edge{}
			}
			if d.Relabels == nil {
				d.Relabels = []graph.Relabel{}
			}
			return d
		}
		want := norm(&graph.Delta{Insert: d.Insert, InsertLabels: d.InsertLabels, Delete: d.Delete, Relabels: d.Relabels})
		if !reflect.DeepEqual(norm(got), want) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			seed := testGraph()
			opts := Options{Dir: dir, Sync: policy}
			l, rec, err := Open(opts, seed)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Epoch != 0 || rec.Replayed != 0 || rec.FromCheckpoint {
				t.Fatalf("fresh dir recovery = %+v, want zero state", rec)
			}
			rng := rand.New(rand.NewSource(7))
			want, wantEpoch := appendSequence(t, l, seed, 0, 20, rng)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, rec2, err := Open(opts, testGraph())
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if rec2.Epoch != wantEpoch || rec2.Replayed != 20 {
				t.Fatalf("recovered epoch %d replayed %d, want %d/%d", rec2.Epoch, rec2.Replayed, wantEpoch, 20)
			}
			if !bytes.Equal(graphBytes(t, rec2.Graph), graphBytes(t, want)) {
				t.Fatal("recovered graph differs from the graph the appends built")
			}
			// The recovered log accepts the next epoch.
			if err := l2.Append(wantEpoch+1, &graph.Delta{}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
		})
	}
}

func TestAppendEpochOrdering(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir()}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(2, &graph.Delta{}); err == nil {
		t.Fatal("append of epoch 2 on an empty log succeeded, want out-of-order error")
	}
	if err := l.Append(1, &graph.Delta{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, &graph.Delta{}); err == nil {
		t.Fatal("duplicate epoch 1 append succeeded, want out-of-order error")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates after the first.
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 64}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	want, wantEpoch := appendSequence(t, l, testGraph(), 0, 10, rng)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", len(segs))
	}
	_, rec, err := Open(Options{Dir: dir, SegmentBytes: 64}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != wantEpoch || !bytes.Equal(graphBytes(t, rec.Graph), graphBytes(t, want)) {
		t.Fatalf("multi-segment recovery diverged: epoch %d want %d", rec.Epoch, wantEpoch)
	}
}

func TestCheckpointBoundsReplayAndPrunes(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 128, CheckpointEvery: 5}
	l, _, err := Open(opts, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cur, epoch := testGraph(), uint64(0)
	for i := 0; i < 12; i++ {
		d := randomDelta(cur, rng)
		ng, _, err := graph.ApplyDelta(cur, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(epoch+1, d); err != nil {
			t.Fatal(err)
		}
		cur, epoch = ng, epoch+1
		wrote, err := l.MaybeCheckpoint(cur, epoch)
		if err != nil {
			t.Fatalf("checkpoint at epoch %d: %v", epoch, err)
		}
		if want := epoch%5 == 0; wrote != want {
			t.Fatalf("MaybeCheckpoint at epoch %d wrote=%v, want %v", epoch, wrote, want)
		}
	}
	st := l.Stats()
	if st.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2 (every 5 of 12 appends)", st.Checkpoints)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, err := listCheckpointFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || ckpts[0].epoch != 10 {
		t.Fatalf("checkpoints on disk = %+v, want exactly one at epoch 10", ckpts)
	}

	_, rec, err := Open(opts, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FromCheckpoint || rec.CheckpointEpoch != 10 {
		t.Fatalf("recovery = %+v, want from checkpoint 10", rec)
	}
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2 (tail after checkpoint)", rec.Replayed)
	}
	if rec.Epoch != 12 || !bytes.Equal(graphBytes(t, rec.Graph), graphBytes(t, cur)) {
		t.Fatal("checkpoint-plus-tail recovery diverged from the applied sequence")
	}
}

func TestCheckpointPersistsExternalTable(t *testing.T) {
	dir := t.TempDir()
	// Build a graph whose degree order differs from load order, relabel it
	// (as amatchd does), and checkpoint.
	b := graph.NewBuilder(4)
	b.SetLabel(0, 1)
	b.SetLabel(3, 2)
	for _, e := range [][2]graph.VertexID{{3, 0}, {3, 1}, {3, 2}, {0, 1}} {
		b.AddEdge(e[0], e[1])
	}
	g := graph.RelabelByDegree(b.Build())
	if !g.Relabeled() {
		t.Fatal("test graph should relabel")
	}
	l, _, err := Open(Options{Dir: dir}, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, &graph.Delta{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(g, 1); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, rec, err := Open(Options{Dir: dir}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FromCheckpoint {
		t.Fatal("recovery ignored the checkpoint")
	}
	if !reflect.DeepEqual(rec.Graph.ExternalTable(), g.ExternalTable()) {
		t.Fatalf("external table lost across checkpoint: got %v want %v",
			rec.Graph.ExternalTable(), g.ExternalTable())
	}
	for v := 0; v < 4; v++ {
		if rec.Graph.ExternalID(graph.VertexID(v)) != g.ExternalID(graph.VertexID(v)) {
			t.Fatalf("ExternalID(%d) diverged after recovery", v)
		}
	}
}

func TestTornWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	var ff *FaultFile
	opts := Options{
		Dir: dir,
		OpenFile: func(path string) (File, error) {
			// Tear the third write on the first segment: header is write 1,
			// records are writes 2, 3, ...
			f, err := NewFaultFile(path, FaultSpec{TearWriteAt: 3, TearKeepBytes: 5})
			ff = f
			return f, err
		},
	}
	l, _, err := Open(opts, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, &graph.Delta{Relabels: []graph.Relabel{{V: 0, L: 5}}}); err != nil {
		t.Fatal(err)
	}
	err = l.Append(2, &graph.Delta{Relabels: []graph.Relabel{{V: 1, L: 6}}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append error = %v, want ErrInjected", err)
	}
	if !ff.Torn {
		t.Fatal("fault did not fire")
	}
	// The failed append rolled back; the same epoch must now succeed.
	if err := l.Append(2, &graph.Delta{Relabels: []graph.Relabel{{V: 1, L: 7}}}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	l.Close()

	// Recovery sees a clean two-record log — no torn tail, label 7 wins.
	_, rec, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail {
		t.Fatal("rollback left a torn tail for recovery to truncate")
	}
	if rec.Epoch != 2 || rec.Graph.Label(1) != 7 {
		t.Fatalf("recovered epoch %d label(1)=%d, want 2/7", rec.Epoch, rec.Graph.Label(1))
	}
}

func TestShortFsyncRollsBack(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Dir:  dir,
		Sync: SyncAlways,
		OpenFile: func(path string) (File, error) {
			return NewFaultFile(path, FaultSpec{FailSyncAt: 2})
		},
	}
	l, _, err := Open(opts, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, &graph.Delta{Relabels: []graph.Relabel{{V: 0, L: 5}}}); err != nil {
		t.Fatal(err)
	}
	err = l.Append(2, &graph.Delta{Relabels: []graph.Relabel{{V: 2, L: 6}}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short-fsync append error = %v, want ErrInjected", err)
	}
	// The record was fully written but not durably acknowledged; rollback
	// keeps disk and acknowledgment in agreement (epoch 2 is NOT on disk).
	l.Close()
	_, rec, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 1 {
		t.Fatalf("recovered epoch %d after failed fsync, want 1 (unacked batch must not survive)", rec.Epoch)
	}
}

func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncAlways, CheckpointEvery: 2}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cur, epoch := appendSequence(t, l, testGraph(), 0, 4, rng)
	if _, err := l.MaybeCheckpoint(cur, epoch); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 4 {
		t.Errorf("Appends = %d, want 4", st.Appends)
	}
	if st.Fsyncs < 4 {
		t.Errorf("Fsyncs = %d, want >= 4 under SyncAlways", st.Fsyncs)
	}
	if st.Bytes <= 0 {
		t.Errorf("Bytes = %d, want > 0", st.Bytes)
	}
	if st.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", st.Checkpoints)
	}
	if st.LastEpoch != 4 {
		t.Errorf("LastEpoch = %d, want 4", st.LastEpoch)
	}
	l.Close()
}

func TestCorruptTailHelper(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	appendSequence(t, l, testGraph(), 0, 3, rng)
	l.Close()
	segs, err := listSegmentFiles(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	if err := CorruptTail(segs[0].path, 0, true); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail || rec.Epoch != 2 {
		t.Fatalf("bit-flipped tail: torn=%v epoch=%d, want torn at epoch 2", rec.TornTail, rec.Epoch)
	}
}

func TestCheckpointEpochValidation(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir()}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Checkpoint(testGraph(), 5); err == nil {
		t.Fatal("checkpoint ahead of the log tail succeeded, want error")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"none", SyncNone, true},
		{"sometimes", 0, false},
		{"", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestLargeRecordRejected(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir()}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A delta whose encoding exceeds maxRecordLen must be rejected before
	// any bytes are written.
	huge := &graph.Delta{Insert: make([]graph.Edge, maxRecordLen/8)}
	for i := range huge.Insert {
		huge.Insert[i] = graph.Edge{U: 1 << 31, V: 1 << 30}
	}
	if err := l.Append(1, huge); err == nil {
		t.Fatal("oversized record accepted")
	}
	if st := l.Stats(); st.Appends != 0 || st.Bytes != 0 {
		t.Fatalf("oversized record leaked into counters: %+v", st)
	}
}

func TestCloseIdempotent(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir(), Sync: SyncInterval}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, &graph.Delta{}); err == nil {
		t.Fatal("append on closed log succeeded")
	}
}

func TestOpenMissingDirCreates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "wal")
	l, rec, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if rec.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", rec.Epoch)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("dir not created: %v", err)
	}
}
