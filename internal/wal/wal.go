// Package wal is the durability floor under live ingest: a segmented,
// CRC32C-checksummed, length-prefixed write-ahead log of accepted delta
// batches, plus periodic CSR checkpoints that bound replay to the tail.
//
// The contract with the server (see docs/INTERNALS.md) is write-ahead in
// the strict sense: a batch's record is appended — and, under the
// `always` sync policy, fsynced — before the epoch that contains it is
// published to readers. Recovery (Open) inverts that: checkpoint, then
// tail replay with torn-tail truncation, reconstructs exactly the
// published prefix.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"approxmatch/internal/graph"
)

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged batch
	// survives power loss, not just process death.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery).
	// Process death loses nothing (writes are unbuffered, so they live
	// in the page cache); power loss can lose up to one interval.
	SyncInterval
	// SyncNone never fsyncs explicitly; durability is whatever the OS
	// provides. Process death still loses nothing.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// File is the slice of *os.File the log needs. The indirection exists so
// tests can interpose FaultFile (torn writes, failed fsyncs) underneath
// an otherwise unmodified Log.
type File interface {
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Options configures a Log. The zero value of every field gets a sane
// default from withDefaults.
type Options struct {
	// Dir is the WAL directory (segments + checkpoints). Required.
	Dir string
	// Sync is the append durability policy.
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval.
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it would exceed this
	// size (a segment always holds at least one record).
	SegmentBytes int64
	// CheckpointEvery writes a CSR checkpoint after this many records
	// since the last one. <= 0 disables automatic checkpoints.
	CheckpointEvery int
	// Limits guards checkpoint loading against hostile or corrupt
	// files, same as the graph binary loader.
	Limits graph.LoaderLimits
	// OpenFile creates/opens a file for writing. Nil means os.Create.
	// Test seam for fault injection.
	OpenFile func(path string) (File, error)
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.OpenFile == nil {
		o.OpenFile = func(path string) (File, error) { return os.Create(path) }
	}
	return o
}

// Stats is a point-in-time snapshot of the log's durability counters,
// surfaced on /metrics.
type Stats struct {
	Appends             int64
	Fsyncs              int64
	Bytes               int64
	Checkpoints         int64
	ReplayedRecords     int64
	TornTailTruncations int64
	RecoverySeconds     float64
	LastEpoch           uint64
}

type counters struct {
	appends       atomic.Int64
	fsyncs        atomic.Int64
	bytes         atomic.Int64
	checkpoints   atomic.Int64
	replayed      atomic.Int64
	tornTails     atomic.Int64
	recoveryNanos atomic.Int64
	lastEpoch     atomic.Uint64
}

// Log is an append-only delta log. One writer (the ingest path) appends;
// Stats may be read concurrently.
type Log struct {
	opts Options

	mu        sync.Mutex
	f         File   // active segment, nil until the first append after open
	path      string // active segment path
	size      int64  // bytes written to the active segment
	records   int    // records in the active segment
	lastEpoch uint64 // epoch of the newest appended or recovered record
	ckptEpoch uint64 // epoch of the newest checkpoint on disk
	sinceCkpt int    // records appended since the last checkpoint
	broken    error  // sticky: a failed append could not be rolled back
	closed    bool

	c counters

	stopSync chan struct{}
	syncWG   sync.WaitGroup
}

func segmentPath(dir string, firstEpoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", firstEpoch))
}

func checkpointPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.ckpt", epoch))
}

// LastEpoch reports the epoch of the newest record the log holds.
func (l *Log) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastEpoch
}

// Stats snapshots the durability counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:             l.c.appends.Load(),
		Fsyncs:              l.c.fsyncs.Load(),
		Bytes:               l.c.bytes.Load(),
		Checkpoints:         l.c.checkpoints.Load(),
		ReplayedRecords:     l.c.replayed.Load(),
		TornTailTruncations: l.c.tornTails.Load(),
		RecoverySeconds:     float64(l.c.recoveryNanos.Load()) / 1e9,
		LastEpoch:           l.c.lastEpoch.Load(),
	}
}

// Append logs the delta that produces epoch. Epochs must arrive in
// strict +1 order — the caller holds the snapshot store's writer lock,
// so this is an invariant check, not a synchronization point. On any
// write or sync failure the segment is truncated back to the previous
// record boundary, so an unacknowledged batch leaves no partial record
// for recovery to trip over.
func (l *Log) Append(epoch uint64, d *graph.Delta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append on closed log")
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log wedged by earlier failure: %w", l.broken)
	}
	if epoch != l.lastEpoch+1 {
		return fmt.Errorf("wal: append epoch %d out of order (last %d)", epoch, l.lastEpoch)
	}
	rec := appendRecord(nil, epoch, d)
	if len(rec)-recHeaderLen > maxRecordLen {
		return fmt.Errorf("wal: record payload %d bytes exceeds max %d", len(rec)-recHeaderLen, maxRecordLen)
	}
	if err := l.rotateLocked(epoch, int64(len(rec))); err != nil {
		return err
	}
	pre := l.size
	n, err := l.f.Write(rec)
	if err != nil {
		l.rollbackLocked(pre, err)
		return fmt.Errorf("wal: append write (%d/%d bytes): %w", n, len(rec), err)
	}
	l.size += int64(len(rec))
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			// The record may or may not have reached disk; roll it back
			// so the in-process state ("not acknowledged") and the
			// on-disk state agree.
			l.rollbackLocked(pre, err)
			return fmt.Errorf("wal: append fsync: %w", err)
		}
		l.c.fsyncs.Add(1)
	}
	l.records++
	l.lastEpoch = epoch
	l.sinceCkpt++
	l.c.appends.Add(1)
	l.c.bytes.Add(int64(len(rec)))
	l.c.lastEpoch.Store(epoch)
	return nil
}

// rollbackLocked truncates the active segment back to pre bytes after a
// failed append and seeks the write offset back with it (Truncate alone
// leaves the offset past the cut, which would zero-fill a hole under the
// next record). If either step fails the log is wedged: further appends
// error out rather than risk interleaving good records after a torn one.
func (l *Log) rollbackLocked(pre int64, cause error) {
	if err := l.f.Truncate(pre); err != nil {
		l.broken = fmt.Errorf("rollback truncate after %v: %w", cause, err)
		return
	}
	if _, err := l.f.Seek(pre, io.SeekStart); err != nil {
		l.broken = fmt.Errorf("rollback seek after %v: %w", cause, err)
		return
	}
	l.size = pre
}

// rotateLocked ensures an active segment with room for recLen more
// bytes, creating or rotating as needed. A fresh segment's first record
// is always admitted even if it alone exceeds SegmentBytes.
func (l *Log) rotateLocked(nextEpoch uint64, recLen int64) error {
	if l.f != nil && l.records > 0 && l.size+recLen > l.opts.SegmentBytes {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: pre-rotation fsync: %w", err)
		}
		l.c.fsyncs.Add(1)
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: close rotated segment: %w", err)
		}
		l.f = nil
	}
	if l.f != nil {
		return nil
	}
	path := segmentPath(l.opts.Dir, nextEpoch)
	f, err := l.opts.OpenFile(path)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := appendSegmentHeader(nil, nextEpoch)
	if n, err := f.Write(hdr); err != nil {
		// A torn header makes this file a valid torn tail (recovery
		// truncates it); try to leave nothing behind regardless.
		_ = f.Truncate(0)
		_ = f.Close()
		return fmt.Errorf("wal: write segment header (%d/%d bytes): %w", n, len(hdr), err)
	}
	l.f = f
	l.path = path
	l.size = int64(len(hdr))
	l.records = 0
	l.c.bytes.Add(int64(len(hdr)))
	return nil
}

// startSyncLoop launches the SyncInterval background fsync goroutine.
func (l *Log) startSyncLoop() {
	if l.opts.Sync != SyncInterval {
		return
	}
	l.stopSync = make(chan struct{})
	l.syncWG.Add(1)
	go func() {
		defer l.syncWG.Done()
		t := time.NewTicker(l.opts.SyncEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				l.mu.Lock()
				if l.f != nil && l.broken == nil && !l.closed {
					if err := l.f.Sync(); err == nil {
						l.c.fsyncs.Add(1)
					}
				}
				l.mu.Unlock()
			case <-l.stopSync:
				return
			}
		}
	}()
}

// Close syncs and closes the active segment and stops the background
// sync loop. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stopSync
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		l.syncWG.Wait()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var first error
	if err := l.f.Sync(); err != nil {
		first = err
	} else {
		l.c.fsyncs.Add(1)
	}
	if err := l.f.Close(); err != nil && first == nil {
		first = err
	}
	l.f = nil
	return first
}
