package wal

import (
	"bytes"
	"os"
	"testing"

	"approxmatch/internal/graph"
)

// FuzzReplayWAL throws arbitrary bytes at recovery as the newest (and
// only) segment. The invariants under hostile input:
//
//   - never panic or over-allocate (framing guards bound every count by
//     the bytes that could back it);
//   - any graph it does accept passes structural validation;
//   - whatever survives on disk must recover to the same (epoch, graph)
//     a second time (truncation is idempotent).
func FuzzReplayWAL(f *testing.F) {
	// Seed with a genuine 3-record segment and a few mutations of it.
	valid := appendSegmentHeader(nil, 1)
	d1 := &graph.Delta{Insert: []graph.Edge{{U: 1, V: 3}}}
	d2 := &graph.Delta{Delete: []graph.Edge{{U: 0, V: 1}}}
	d3 := &graph.Delta{Relabels: []graph.Relabel{{V: 5, L: 7}}}
	valid = appendRecord(valid, 1, d1)
	valid = appendRecord(valid, 2, d2)
	valid = appendRecord(valid, 3, d3)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:segHeaderLen])
	f.Add([]byte{})
	f.Add([]byte("AWAL"))
	mut := append([]byte(nil), valid...)
	mut[segHeaderLen+10] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
			t.Skip()
		}
		l, rec, err := Open(Options{Dir: dir}, testGraph())
		if err != nil {
			return // refusal is always acceptable
		}
		l.Close()
		if err := rec.Graph.Validate(); err != nil {
			t.Fatalf("recovered graph fails validation: %v", err)
		}
		// Truncation must be idempotent: a second recovery of whatever
		// survived lands on the same state.
		l2, rec2, err := Open(Options{Dir: dir}, testGraph())
		if err != nil {
			t.Fatalf("second recovery refused after first succeeded: %v", err)
		}
		l2.Close()
		if rec2.Epoch != rec.Epoch {
			t.Fatalf("second recovery epoch %d != first %d", rec2.Epoch, rec.Epoch)
		}
		if !bytes.Equal(graphBytes(t, rec2.Graph), graphBytes(t, rec.Graph)) {
			t.Fatal("second recovery produced a different graph")
		}
	})
}
