package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"strings"
	"testing"

	"approxmatch/internal/graph"
)

// buildLog writes count deltas into a fresh WAL dir and returns the dir,
// the per-epoch graphs (graphs[i] is the state after epoch i; graphs[0]
// is the seed), and the single segment's raw bytes.
func buildLog(t *testing.T, count int) (string, []*graph.Graph, []byte) {
	t.Helper()
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	graphs := []*graph.Graph{testGraph()}
	cur := graphs[0]
	for i := 0; i < count; i++ {
		d := randomDelta(cur, rng)
		ng, _, err := graph.ApplyDelta(cur, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(uint64(i+1), d); err != nil {
			t.Fatal(err)
		}
		cur = ng
		graphs = append(graphs, cur)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegmentFiles(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	return dir, graphs, raw
}

// recordBoundaries returns the byte offsets at which each record ends
// (so boundaries[i] is the segment length that holds exactly i records).
func recordBoundaries(t *testing.T, raw []byte) []int {
	t.Helper()
	bounds := []int{segHeaderLen}
	off := segHeaderLen
	for off < len(raw) {
		payloadLen := int(binary.LittleEndian.Uint32(raw[off:]))
		off += recHeaderLen + payloadLen
		bounds = append(bounds, off)
	}
	if off != len(raw) {
		t.Fatalf("segment does not parse cleanly: ended at %d of %d", off, len(raw))
	}
	return bounds
}

// TestTornTailEveryByteBoundary truncates the single segment to every
// possible length and asserts recovery lands on the newest record
// boundary at or below the cut: the acknowledged prefix survives
// bit-identically, the torn suffix is truncated, and recovery at a clean
// boundary reports no torn tail.
func TestTornTailEveryByteBoundary(t *testing.T) {
	const nRecords = 3
	_, graphs, raw := buildLog(t, nRecords)
	bounds := recordBoundaries(t, raw)
	if len(bounds) != nRecords+1 {
		t.Fatalf("boundaries = %v, want %d records", bounds, nRecords)
	}

	for size := segHeaderLen; size <= len(raw); size++ {
		// Number of complete records within the first `size` bytes, and
		// whether the cut lands exactly on a record boundary.
		complete := 0
		atBoundary := false
		for i, b := range bounds {
			if size >= b {
				complete = i
			}
			if size == b {
				atBoundary = true
			}
		}

		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), raw[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(Options{Dir: dir}, testGraph())
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		l.Close()
		if rec.Epoch != uint64(complete) {
			t.Fatalf("size %d: recovered epoch %d, want %d", size, rec.Epoch, complete)
		}
		if rec.TornTail == atBoundary {
			t.Fatalf("size %d: TornTail = %v with cut-at-boundary = %v", size, rec.TornTail, atBoundary)
		}
		if !bytes.Equal(graphBytes(t, rec.Graph), graphBytes(t, graphs[complete])) {
			t.Fatalf("size %d: recovered graph differs from epoch-%d state", size, complete)
		}
		// The truncated-on-disk state must itself recover cleanly (no
		// repeated truncation, same epoch).
		if complete > 0 {
			_, rec2, err := Open(Options{Dir: dir}, testGraph())
			if err != nil {
				t.Fatalf("size %d: second recovery: %v", size, err)
			}
			if rec2.Epoch != uint64(complete) || rec2.TornTail {
				t.Fatalf("size %d: second recovery epoch %d torn %v, want %d/false",
					size, rec2.Epoch, rec2.TornTail, complete)
			}
		} else if segs, _ := listSegmentFiles(dir); len(segs) != 0 {
			// A header-only or header-torn remainder must have been removed.
			t.Fatalf("size %d: empty segment left behind: %v", size, segs)
		}
	}
}

// TestBitFlipLastRecordEveryByte flips each byte of the final record in
// turn; every flip must be caught (length sanity or CRC) and truncated
// as a torn tail, recovering exactly the first two epochs.
func TestBitFlipLastRecordEveryByte(t *testing.T) {
	const nRecords = 3
	_, graphs, raw := buildLog(t, nRecords)
	bounds := recordBoundaries(t, raw)
	lastStart, lastEnd := bounds[nRecords-1], bounds[nRecords]

	for pos := lastStart; pos < lastEnd; pos++ {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x41
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(Options{Dir: dir}, testGraph())
		if err != nil {
			t.Fatalf("flip at %d: %v", pos, err)
		}
		l.Close()
		if !rec.TornTail || rec.Epoch != nRecords-1 {
			t.Fatalf("flip at %d: torn=%v epoch=%d, want torn at epoch %d",
				pos, rec.TornTail, rec.Epoch, nRecords-1)
		}
		if !bytes.Equal(graphBytes(t, rec.Graph), graphBytes(t, graphs[nRecords-1])) {
			t.Fatalf("flip at %d: recovered graph differs from epoch-%d state", pos, nRecords-1)
		}
	}
}

// TestMidLogCorruptionRefused flips a byte inside a non-final segment:
// that damage cannot come from a crash, so recovery must refuse rather
// than truncate away acknowledged records.
func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the log spans several files.
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 64}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	appendSequence(t, l, testGraph(), 0, 8, rng)
	l.Close()
	segs, err := listSegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %d", len(segs))
	}
	victim := segs[1].path
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir, SegmentBytes: 64}, testGraph())
	if err == nil || !strings.Contains(err.Error(), "mid-log corruption") {
		t.Fatalf("recovery of mid-log damage = %v, want refusal", err)
	}
}

// TestEpochGapRefused hand-crafts a segment whose records jump from
// epoch 1 to epoch 3. A gap means records went missing; refuse.
func TestEpochGapRefused(t *testing.T) {
	dir := t.TempDir()
	b := appendSegmentHeader(nil, 1)
	b = appendRecord(b, 1, &graph.Delta{Relabels: []graph.Relabel{{V: 0, L: 4}}})
	b = appendRecord(b, 3, &graph.Delta{Relabels: []graph.Relabel{{V: 1, L: 4}}})
	if err := os.WriteFile(segmentPath(dir, 1), b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{Dir: dir}, testGraph())
	if err == nil || !strings.Contains(err.Error(), "breaks chain") {
		t.Fatalf("epoch-gap recovery = %v, want chain-break refusal", err)
	}
}

// TestDoubleReplayRefused hand-crafts a segment that repeats epoch 1
// after epoch 2 — the shape a duplicated or stale log produces. Epoch
// monotonicity must reject it.
func TestDoubleReplayRefused(t *testing.T) {
	dir := t.TempDir()
	d := &graph.Delta{Relabels: []graph.Relabel{{V: 2, L: 5}}}
	b := appendSegmentHeader(nil, 1)
	b = appendRecord(b, 1, d)
	b = appendRecord(b, 2, &graph.Delta{Relabels: []graph.Relabel{{V: 3, L: 6}}})
	b = appendRecord(b, 1, d)
	if err := os.WriteFile(segmentPath(dir, 1), b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{Dir: dir}, testGraph())
	if err == nil || !strings.Contains(err.Error(), "stale or duplicated") {
		t.Fatalf("double-replay recovery = %v, want epoch-monotonicity refusal", err)
	}
}

// TestUndecodableRecordRefused: a CRC-valid record whose payload does not
// decode is semantic damage, never a torn tail — refuse even in the last
// segment.
func TestUndecodableRecordRefused(t *testing.T) {
	dir := t.TempDir()
	b := appendSegmentHeader(nil, 1)
	// Valid frame around garbage: epoch 1 plus bytes that are not a delta.
	payload := binary.LittleEndian.AppendUint64(nil, 1)
	payload = append(payload, 0xff, 0xff, 0xff) // flags byte + truncated varint
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	b = append(b, payload...)
	if err := os.WriteFile(segmentPath(dir, 1), b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{Dir: dir}, testGraph())
	if err == nil {
		t.Fatal("undecodable CRC-valid record accepted, want refusal")
	}
}

// TestUnappliableRecordRefused: a well-formed record whose delta fails
// validation against the recovered state (deleting an absent edge) is
// refused, not truncated.
func TestUnappliableRecordRefused(t *testing.T) {
	dir := t.TempDir()
	b := appendSegmentHeader(nil, 1)
	// testGraph has no edge 1-4.
	b = appendRecord(b, 1, &graph.Delta{Delete: []graph.Edge{{U: 1, V: 4}}})
	if err := os.WriteFile(segmentPath(dir, 1), b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{Dir: dir}, testGraph())
	if err == nil || !strings.Contains(err.Error(), "replay") {
		t.Fatalf("unappliable record recovery = %v, want refusal", err)
	}
}

// TestHeaderOnlySegmentDiscarded: a crash between rotation and the first
// append of the new segment leaves a header-only file; recovery drops it
// (no records lost — none were written) without flagging a torn tail.
func TestHeaderOnlySegmentDiscarded(t *testing.T) {
	dir, graphs, _ := buildLog(t, 2)
	empty := segmentPath(dir, 3)
	if err := os.WriteFile(empty, appendSegmentHeader(nil, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if rec.Epoch != 2 || rec.TornTail {
		t.Fatalf("recovery = epoch %d torn %v, want 2/false", rec.Epoch, rec.TornTail)
	}
	if !bytes.Equal(graphBytes(t, rec.Graph), graphBytes(t, graphs[2])) {
		t.Fatal("recovered graph differs")
	}
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Fatalf("header-only segment not discarded: %v", err)
	}
	// The recovered log must be able to reuse the freed name.
	if err := l.Append(3, &graph.Delta{}); err != nil {
		t.Fatalf("append after discard: %v", err)
	}
}

// TestTornHeaderSegmentDiscarded: a crash inside the new segment's
// header write leaves a short header; the file holds nothing durable and
// is removed, counted as a torn tail.
func TestTornHeaderSegmentDiscarded(t *testing.T) {
	dir, _, _ := buildLog(t, 2)
	tornPath := segmentPath(dir, 3)
	if err := os.WriteFile(tornPath, appendSegmentHeader(nil, 3)[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if rec.Epoch != 2 || !rec.TornTail {
		t.Fatalf("recovery = epoch %d torn %v, want 2/true", rec.Epoch, rec.TornTail)
	}
	if _, err := os.Stat(tornPath); !os.IsNotExist(err) {
		t.Fatalf("torn-header segment not discarded: %v", err)
	}
}

// TestCorruptCheckpointRefused: checkpoint damage is never a torn tail
// (checkpoints are written to a temp file and renamed, so a crash leaves
// either the old set or the new file whole). Any CRC failure refuses.
func TestCorruptCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, &graph.Delta{Relabels: []graph.Relabel{{V: 0, L: 9}}}); err != nil {
		t.Fatal(err)
	}
	g, _, err := graph.ApplyDelta(testGraph(), &graph.Delta{Relabels: []graph.Relabel{{V: 0, L: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(g, 1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	ckpts, err := listCheckpointFiles(dir)
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("checkpoints = %v (%v)", ckpts, err)
	}
	b, err := os.ReadFile(ckpts[0].path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(ckpts[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}, testGraph()); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestCheckpointSeedMismatchRefused: pointing amatchd at the wrong WAL
// dir (checkpoint for a different graph) must fail loudly.
func TestCheckpointSeedMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, &graph.Delta{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(testGraph(), 1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	other := graph.NewBuilder(3)
	other.AddEdge(0, 1)
	_, _, err = Open(Options{Dir: dir}, other.Build())
	if err == nil || !strings.Contains(err.Error(), "wrong WAL dir") {
		t.Fatalf("mismatched seed recovery = %v, want refusal", err)
	}
}

// TestNoSeedNoCheckpoint: nothing to recover from is an error, not an
// empty graph.
func TestNoSeedNoCheckpoint(t *testing.T) {
	if _, _, err := Open(Options{Dir: t.TempDir()}, nil); err == nil {
		t.Fatal("Open with no seed and no checkpoint succeeded")
	}
}

// TestRecoveryIsIdempotent: recovering the same directory twice (no
// appends in between) yields the identical graph and epoch — the
// restart-identity core.
func TestRecoveryIsIdempotent(t *testing.T) {
	dir, graphs, _ := buildLog(t, 5)
	for round := 0; round < 3; round++ {
		l, rec, err := Open(Options{Dir: dir}, testGraph())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		l.Close()
		if rec.Epoch != 5 {
			t.Fatalf("round %d: epoch %d, want 5", round, rec.Epoch)
		}
		if !bytes.Equal(graphBytes(t, rec.Graph), graphBytes(t, graphs[5])) {
			t.Fatalf("round %d: graph drifted", round)
		}
	}
}
