module approxmatch

go 1.22
