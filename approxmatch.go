// Package approxmatch is a library for approximate pattern matching in
// large vertex-labeled graphs with 100% precision and 100% recall
// guarantees, reproducing the system of Reza, Ripeanu, Sanders and Pearce,
// "Approximate Pattern Matching in Massive Graphs with Precision and Recall
// Guarantees" (SIGMOD 2020).
//
// Given a background graph G, a small labeled search template H0 (possibly
// with mandatory edges) and an edit-distance budget k, Match finds — for
// every connected prototype of H0 within k edge deletions — exactly the
// vertices and edges of G participating in at least one exact match, and
// labels every vertex with the prototypes it matches (a per-vertex binary
// match vector usable as machine-learning features).
//
// The engine implements the paper's pipeline: maximum-candidate-set
// pruning, local and non-local constraint checking (cycle, path and
// template-driven-search token walks), bottom-up search-space reduction via
// the containment rule, work recycling across prototypes, and an exact
// final verification phase. Explore provides the top-down exploratory mode
// (relax the template until matches appear); CountMotifs applies the
// pipeline to network-motif counting; MatchDistributed runs the same
// pipeline on the in-process distributed runtime. For live graphs,
// ApplyDelta/NewSnapshotStore publish mutation batches as immutable epoch
// snapshots and MatchIncremental maintains a Match result across a delta —
// bit-identical to recomputing, at the cost of re-running only a bounded
// region around the change.
package approxmatch

import (
	"context"

	"approxmatch/internal/core"
	"approxmatch/internal/dist"
	"approxmatch/internal/graph"
	"approxmatch/internal/motif"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// Core graph types, re-exported for API users.
type (
	// Graph is a vertex-labeled undirected background graph in CSR form.
	Graph = graph.Graph
	// GraphBuilder accumulates vertices and edges into a Graph.
	GraphBuilder = graph.Builder
	// VertexID identifies a background-graph vertex.
	VertexID = graph.VertexID
	// Label is a discrete vertex label.
	Label = graph.Label
	// Template is the search template H0: a small connected labeled graph
	// with optional/mandatory edges.
	Template = pattern.Template
	// TemplateEdge is an edge between template vertex indices.
	TemplateEdge = pattern.Edge
	// Prototype is one edit-distance variant of the template.
	Prototype = prototype.Prototype
	// PrototypeSet is the full prototype set P_k with its edit-distance
	// DAG.
	PrototypeSet = prototype.Set
	// Result is the output of Match: per-prototype solution subgraphs,
	// per-vertex match vectors and work metrics.
	Result = core.Result
	// Solution is one prototype's exact solution subgraph.
	Solution = core.Solution
	// ExploreResult is the output of the top-down exploratory mode.
	ExploreResult = core.TopDownResult
	// Options tune the pipeline's optimizations; zero value disables all
	// of them. Use DefaultOptions for the fully optimized configuration.
	Options = core.Config
	// Budget bounds a single run's work units, auxiliary bytes and wall
	// time (Options.Budget). The zero value is unlimited. An exhausted
	// budget stops the bottom-up pipeline between edit-distance levels and
	// returns a partial Result (Result.Partial) alongside
	// ErrBudgetExhausted: completed levels keep the full precision/recall
	// guarantee, unfinished ones are reported unknown.
	Budget = core.Budget
	// MotifCounts maps canonical pattern codes to induced subgraph counts.
	MotifCounts = motif.Counts
)

// ErrBudgetExhausted reports (via errors.Is) that a run stopped because its
// Budget ran out. Match and MatchDistributed return it alongside a non-nil
// partial Result; modes without an anytime-partial contract (Explore,
// MatchFlips) return it alone.
var ErrBudgetExhausted = core.ErrBudgetExhausted

// SharedCache is the NLCC work-recycling store. Normally each Match run
// builds a private one; NewSharedCache plus Options.SharedCache lets a
// batch of runs over the same graph recycle constraint-walk verdicts across
// the query boundary (the paper's Obs. 2 lifted across queries). Cache
// content never affects results — exact verification restores precision —
// so sharing is correctness-neutral by construction.
type SharedCache = core.Cache

// NewSharedCache returns a work-recycling store for runs over g, byte-capped
// at maxBytes (LRU eviction; 0 = unbounded), to be injected via
// Options.SharedCache. It is safe for concurrent runs.
func NewSharedCache(g *Graph, maxBytes int64) *SharedCache {
	return core.NewCacheBytes(g.NumVertices(), maxBytes)
}

// NewGraphBuilder returns a builder pre-sized for n vertices (label 0).
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewTemplate builds a search template from per-vertex labels and edges;
// all edges are optional (deletable).
func NewTemplate(labels []Label, edges []TemplateEdge) (*Template, error) {
	return pattern.New(labels, edges)
}

// NewTemplateWithMandatory builds a template with mandatory[i] pinning
// edges[i] against deletion.
func NewTemplateWithMandatory(labels []Label, edges []TemplateEdge, mandatory []bool) (*Template, error) {
	return pattern.NewWithMandatory(labels, edges, mandatory)
}

// NewTemplateEdgeLabeled builds a template whose edges also constrain
// background edge labels (Wildcard accepts any); edgeLabels and mandatory
// may each be nil.
func NewTemplateEdgeLabeled(labels []Label, edges []TemplateEdge, edgeLabels []Label, mandatory []bool) (*Template, error) {
	return pattern.NewEdgeLabeled(labels, edges, edgeLabels, mandatory)
}

// Wildcard is the template label (for vertices or edges) that matches any
// background label — topology-only constraints.
const Wildcard = pattern.Wildcard

// FeatureOptions re-exports the ML feature export controls
// (Result.WriteFeaturesCSV, Result.ParticipationCounts).
type FeatureOptions = core.FeatureOptions

// DefaultOptions returns the fully optimized configuration for
// edit-distance k (work recycling, frequency-based constraint ordering and
// label-pair containment refinement all enabled).
func DefaultOptions(k int) Options { return core.DefaultConfig(k) }

// Match runs the bottom-up approximate-matching pipeline: it returns, for
// every prototype of t within opts.EditDistance deletions, the exact
// solution subgraph, and labels every vertex of g with its prototype
// memberships (Result.Rho, Result.MatchVector).
func Match(g *Graph, t *Template, opts Options) (*Result, error) {
	return core.Run(g, t, opts)
}

// MatchContext is Match honoring ctx: cancellation and deadline expiry stop
// the pipeline (cheap periodic checks inside every phase) and the call
// returns ctx.Err(). Results are identical to Match's when ctx never fires.
func MatchContext(ctx context.Context, g *Graph, t *Template, opts Options) (*Result, error) {
	return core.RunContext(ctx, g, t, opts)
}

// MatchParallelContext is MatchContext with level-parallel prototype search
// (§4's multi-level parallelism): up to parallelism prototypes of each
// edit-distance level are searched concurrently. Results are bit-identical
// to Match's.
func MatchParallelContext(ctx context.Context, g *Graph, t *Template, opts Options, parallelism int) (*Result, error) {
	return core.RunParallelContext(ctx, g, t, opts, parallelism)
}

// Explore runs the top-down exploratory mode (§5.5 of the paper): starting
// from the exact template, the edit distance grows one deletion at a time
// until the first matches appear or opts.EditDistance is exhausted.
func Explore(g *Graph, t *Template, opts Options) (*ExploreResult, error) {
	return core.RunTopDown(g, t, opts)
}

// ExploreContext is Explore honoring ctx (see MatchContext).
func ExploreContext(ctx context.Context, g *Graph, t *Template, opts Options) (*ExploreResult, error) {
	return core.RunTopDownContext(ctx, g, t, opts)
}

// Prototypes generates the prototype set P_k of t without searching.
func Prototypes(t *Template, k int) (*PrototypeSet, error) {
	return prototype.Generate(t, k)
}

// FlipResult re-exports the edge-flip search output.
type FlipResult = core.FlipResult

// MatchFlips searches t and every single-edge-flip variant (one optional
// edge swapped for an absent edge, §3.1's flip extension) exactly.
func MatchFlips(g *Graph, t *Template, opts Options) (*FlipResult, error) {
	return core.MatchFlips(g, t, opts)
}

// MatchFlipsContext is MatchFlips honoring ctx (see MatchContext).
func MatchFlipsContext(ctx context.Context, g *Graph, t *Template, opts Options) (*FlipResult, error) {
	return core.MatchFlipsContext(ctx, g, t, opts)
}

// CountMotifs counts connected vertex-induced subgraph classes of the given
// size via the matching pipeline (labels are ignored). The keys of the
// returned map are canonical pattern codes; pair it with MotifPatterns to
// decode them.
func CountMotifs(g *Graph, size int) (MotifCounts, error) {
	counts, _, err := motif.PipelineCounts(g, size, core.DefaultConfig(0))
	return counts, err
}

// MotifPatterns returns the prototype set of the size-clique — one entry
// per possible connected motif — so callers can map canonical codes in
// MotifCounts back to concrete patterns.
func MotifPatterns(size int) (*PrototypeSet, error) {
	clique := motif.Clique(size)
	return prototype.Generate(clique, clique.NumEdges())
}

// Distributed deployment types, re-exported.
type (
	// DistConfig shapes the simulated deployment (ranks, ranks per node,
	// delegate threshold).
	DistConfig = dist.Config
	// DistOptions tune the distributed pipeline.
	DistOptions = dist.Options
	// DistResult is the distributed run's output; solutions are bit-exact
	// with Match's.
	DistResult = dist.Result
	// DistEngine is a deployment of a graph over simulated ranks.
	DistEngine = dist.Engine
)

// NewDistEngine partitions g over a simulated deployment.
func NewDistEngine(g *Graph, cfg DistConfig) *DistEngine { return dist.NewEngine(g, cfg) }

// ReplicaSet re-exports the checkpoint/reload replica manager: prune once,
// reload the small subgraph onto several deployments and search prototypes
// across them in parallel (§4 / §5.4 of the paper).
type ReplicaSet = dist.ReplicaSet

// NewReplicaSet checkpoints the active subgraph of a pruned state (for
// example Result.Candidate) and reloads it onto `replicas` deployments.
func NewReplicaSet(g *Graph, pruned *core.State, replicas int, cfg DistConfig) (*ReplicaSet, error) {
	return dist.NewReplicaSet(g, pruned, replicas, cfg)
}

// MatchDistributed runs the pipeline on the distributed runtime: the same
// results as Match, produced by message-passing ranks with full message
// accounting (engine.Stats).
func MatchDistributed(e *DistEngine, t *Template, opts DistOptions) (*DistResult, error) {
	return dist.Run(e, t, opts)
}

// MatchDistributedContext is MatchDistributed honoring ctx (see
// MatchContext).
func MatchDistributedContext(ctx context.Context, e *DistEngine, t *Template, opts DistOptions) (*DistResult, error) {
	return dist.RunContext(ctx, e, t, opts)
}

// Live-graph ingest types, re-exported. A Delta is a batch of edge
// inserts/deletes and vertex relabels; ApplyDelta builds the next-epoch
// graph without mutating the current one, and a SnapshotStore publishes
// epochs atomically so concurrent readers are never disturbed.
type (
	// Delta is a batch of graph mutations (edge inserts/deletes, vertex
	// relabels) over a fixed vertex set.
	Delta = graph.Delta
	// DeltaBuilder accumulates mutations into a Delta.
	DeltaBuilder = graph.DeltaBuilder
	// Snapshot is one immutable graph epoch, pinned by a reader.
	Snapshot = graph.Snapshot
	// SnapshotStore publishes epoch-swapped immutable graph snapshots.
	SnapshotStore = graph.SnapshotStore
	// DeltaStats reports the locality of one incremental maintenance run
	// (radius, changed/affected/region vertex counts).
	DeltaStats = core.DeltaStats
)

// NewDeltaBuilder returns an empty mutation-batch builder.
func NewDeltaBuilder() *DeltaBuilder { return graph.NewDeltaBuilder() }

// ApplyDelta validates d against g and returns the next-epoch graph plus the
// changed-vertex list (the seed set for MatchIncremental). g is never
// mutated; validation failures apply nothing.
func ApplyDelta(g *Graph, d *Delta) (*Graph, []VertexID, error) {
	return graph.ApplyDelta(g, d)
}

// NewSnapshotStore publishes g as epoch 0 of an epoch-swapped snapshot
// store: readers pin immutable epochs wait-free while writers apply deltas.
func NewSnapshotStore(g *Graph) *SnapshotStore { return graph.NewSnapshotStore(g) }

// RelabelByDegree reorders g's internal vertex ids by descending degree — a
// cache-locality optimization for hub-heavy graphs — keeping the original
// ids as the external vocabulary: Graph.ExternalID/InternalID translate,
// and match enumeration callbacks plus feature/TSV exports speak external
// ids automatically. Deltas built in external ids must pass through
// TranslateDeltaToInternal before ApplyDelta or SnapshotStore.Apply.
func RelabelByDegree(g *Graph) *Graph { return graph.RelabelByDegree(g) }

// TranslateDeltaToInternal rewrites a delta's external vertex ids into g's
// internal id space (a no-op for graphs that were never relabeled).
func TranslateDeltaToInternal(g *Graph, d *Delta) *Delta {
	return graph.TranslateDeltaToInternal(g, d)
}

// MatchIncremental maintains prev — a complete Match result on the pre-delta
// graph — across a graph delta, returning a Result bit-identical to a
// from-scratch Match on newG at the cost of two pipeline runs restricted to
// the dirty region around the change. newG and changed come from ApplyDelta;
// opts must use the same EditDistance and CountMatches as prev's run. The
// returned DeltaStats reports how local the maintenance was.
func MatchIncremental(prev *Result, newG *Graph, changed []VertexID, opts Options) (*Result, *DeltaStats, error) {
	return core.RunIncremental(prev, newG, changed, opts)
}

// MatchIncrementalContext is MatchIncremental honoring ctx (see
// MatchContext).
func MatchIncrementalContext(ctx context.Context, prev *Result, newG *Graph, changed []VertexID, opts Options) (*Result, *DeltaStats, error) {
	return core.RunIncrementalContext(ctx, prev, newG, changed, opts)
}

// ConnectedComponents labels each vertex with a component id and returns
// the component count.
func ConnectedComponents(g *Graph) ([]int, int) { return graph.ConnectedComponents(g) }

// LargestComponent returns the subgraph induced by the largest connected
// component and the mapping back to original vertex ids.
func LargestComponent(g *Graph) (*Graph, []VertexID) { return graph.LargestComponent(g) }
