#!/usr/bin/env bash
# loopback_smoke.sh stands up the real multi-process deployment shape on
# loopback — four amatchrank worker processes plus one amatchd coordinator
# — runs a /match query through the coordinator, and byte-diffs the
# response body against a direct (in-process engine) amatchd serving the
# same graph. The only normalized field is elapsed_ms, the query's wall
# time; everything else must be byte-for-byte identical. Emits
# `loopback_match_identical=true` on success so CI can grep it.
#
# Every process listens on :0 (a kernel-assigned port) and prints the
# bound address in its "serving" log line, which this script parses — no
# fixed port range, so concurrent runs on one machine cannot collide.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$WORK/genrmat" ./cmd/genrmat
go build -o "$WORK/amatchrank" ./cmd/amatchrank
go build -o "$WORK/amatchd" ./cmd/amatchd

echo "== generating graph"
"$WORK/genrmat" -scale 9 -edgefactor 6 -seed 7 -out "$WORK/g.txt"

# bound_addr <logfile> <seconds>: waits for the process to print its
# kernel-assigned address (JSON log, "addr" field) and echoes it.
bound_addr() {
  local log="$1" deadline=$((SECONDS + $2)) addr
  while true; do
    addr="$(grep -o '"addr":"[^"]*"' "$log" 2>/dev/null | head -n1 | cut -d'"' -f4 || true)"
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    if ((SECONDS >= deadline)); then
      echo "timed out waiting for bound address in $log" >&2
      tail -n 20 "$log" >&2 || true
      return 1
    fi
    sleep 0.2
  done
}

wait_http_ok() { # url, seconds — amatchd answers 503 until recovery completes
  local url="$1" deadline=$((SECONDS + $2))
  while ! curl -fsS -o /dev/null "$url" 2>/dev/null; do
    if ((SECONDS >= deadline)); then
      echo "timed out waiting for $url" >&2
      return 1
    fi
    sleep 0.2
  done
}

echo "== starting 4 rank workers"
RANKS=""
for i in 0 1 2 3; do
  "$WORK/amatchrank" -graph "$WORK/g.txt" -listen "127.0.0.1:0" \
    >"$WORK/rank$i.log" 2>&1 &
  PIDS+=($!)
done
for i in 0 1 2 3; do
  addr="$(bound_addr "$WORK/rank$i.log" 30)"
  RANKS="${RANKS:+$RANKS,}$addr"
done
echo "   ranks: $RANKS"

echo "== starting coordinator amatchd and direct amatchd"
"$WORK/amatchd" -graph "$WORK/g.txt" -addr 127.0.0.1:0 -ranks-addr "$RANKS" \
  >"$WORK/coord.log" 2>&1 &
PIDS+=($!)
"$WORK/amatchd" -graph "$WORK/g.txt" -addr 127.0.0.1:0 \
  >"$WORK/direct.log" 2>&1 &
PIDS+=($!)
COORD="$(bound_addr "$WORK/coord.log" 30)"
DIRECT="$(bound_addr "$WORK/direct.log" 30)"
wait_http_ok "http://$COORD/healthz" 30
wait_http_ok "http://$DIRECT/healthz" 30

QUERY='{"template":"v 0 1\nv 1 2\nv 2 3\ne 0 1\ne 1 2\ne 0 2\n","k":1,"count":true,"vectors":true}'
strip_elapsed() { sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/g'; }

echo "== querying /match through the coordinator and directly"
for path in /match /explore; do
  if [ "$path" = /explore ]; then
    QUERY='{"template":"v 0 1\nv 1 2\nv 2 3\ne 0 1\ne 1 2\ne 0 2\n","max_k":2}'
  fi
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$QUERY" \
    "http://$COORD$path" | strip_elapsed >"$WORK/routed.json"
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$QUERY" \
    "http://$DIRECT$path" | strip_elapsed >"$WORK/direct.json"
  if ! cmp -s "$WORK/routed.json" "$WORK/direct.json"; then
    echo "FAIL: $path body via rank group differs from in-process engine" >&2
    diff "$WORK/direct.json" "$WORK/routed.json" >&2 || true
    exit 1
  fi
  echo "$path: $(wc -c <"$WORK/routed.json") bytes, byte-identical"
done

echo "loopback_match_identical=true"
