#!/usr/bin/env bash
# crash_restart_smoke.sh is the end-to-end durability smoke: a WAL-backed
# amatchd ingests a batch stream, gets kill -9'd mid-stream with no
# warning, and is restarted on the same WAL dir. Every acknowledged batch
# must survive: the recovered epoch equals the number of 200-acked
# ingests, and the /match count and /stats edge count are identical to
# what the server reported just before the kill. Emits
# `crash_restart_identical=true` on success so CI can grep it.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$WORK/genrmat" ./cmd/genrmat
go build -o "$WORK/amatchd" ./cmd/amatchd

echo "== generating graph"
"$WORK/genrmat" -scale 9 -edgefactor 6 -seed 7 -out "$WORK/g.txt"

bound_addr() { # logfile, seconds
  local log="$1" deadline=$((SECONDS + $2)) addr
  while true; do
    addr="$(grep -o '"addr":"[^"]*"' "$log" 2>/dev/null | head -n1 | cut -d'"' -f4 || true)"
    if [ -n "$addr" ]; then echo "$addr"; return 0; fi
    if ((SECONDS >= deadline)); then
      echo "timed out waiting for bound address in $log" >&2
      tail -n 20 "$log" >&2 || true
      return 1
    fi
    sleep 0.2
  done
}

wait_http_ok() { # url, seconds
  local url="$1" deadline=$((SECONDS + $2))
  while ! curl -fsS -o /dev/null "$url" 2>/dev/null; do
    if ((SECONDS >= deadline)); then
      echo "timed out waiting for $url" >&2
      return 1
    fi
    sleep 0.2
  done
}

start_amatchd() { # logfile
  "$WORK/amatchd" -graph "$WORK/g.txt" -addr 127.0.0.1:0 -ingest \
    -wal-dir "$WORK/wal" -wal-sync always -wal-checkpoint-every 8 \
    >"$1" 2>&1 &
  PIDS+=($!)
  LAST_PID=$!
}

QUERY='{"template":"v 0 1\nv 1 2\nv 2 3\ne 0 1\ne 1 2\ne 0 2\n","k":1,"count":true}'
match_count() { # addr — per-prototype match counts, comma-joined
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$QUERY" \
    "http://$1/match" | grep -o '"matches":[0-9]*' | cut -d: -f2 | paste -sd, -
}
stats_field() { # addr, field
  curl -fsS "http://$1/stats" | grep -o "\"$2\":[0-9]*" | head -n1 | cut -d: -f2
}

echo "== run 1: WAL-backed amatchd ingesting 20 batches"
start_amatchd "$WORK/run1.log"
ADDR="$(bound_addr "$WORK/run1.log" 30)"
wait_http_ok "http://$ADDR/healthz" 30

# 20 batches: toggle an edge absent from the (deterministic, seed-7)
# graph in and out, and relabel a rotating vertex. All must ack.
ACKED=0
for i in $(seq 1 20); do
  if ((i % 2 == 1)); then body="{\"insert\":[[200,400]],\"relabel\":[[$((i % 512)),1]]}"
  else body="{\"delete\":[[200,400]]}"; fi
  curl -fsS -o /dev/null -X POST -H 'Content-Type: application/json' -d "$body" \
    "http://$ADDR/ingest"
  ACKED=$((ACKED + 1))
done

PRE_EPOCH="$(stats_field "$ADDR" epoch)"
PRE_EDGES="$(stats_field "$ADDR" edges)"
PRE_COUNT="$(match_count "$ADDR")"
echo "   acked=$ACKED epoch=$PRE_EPOCH edges=$PRE_EDGES match_count=$PRE_COUNT"
if [ "$PRE_EPOCH" != "$ACKED" ]; then
  echo "FAIL: pre-kill epoch $PRE_EPOCH != acked batches $ACKED" >&2
  exit 1
fi

echo "== kill -9 (no shutdown, no final checkpoint)"
kill -9 "$LAST_PID"
wait "$LAST_PID" 2>/dev/null || true

echo "== run 2: restart on the same WAL dir"
start_amatchd "$WORK/run2.log"
ADDR2="$(bound_addr "$WORK/run2.log" 30)"
wait_http_ok "http://$ADDR2/healthz" 30
if ! grep -q '"msg":"wal recovered"' "$WORK/run2.log"; then
  echo "FAIL: restart did not go through WAL recovery" >&2
  tail -n 20 "$WORK/run2.log" >&2
  exit 1
fi

POST_EPOCH="$(stats_field "$ADDR2" epoch)"
POST_EDGES="$(stats_field "$ADDR2" edges)"
POST_COUNT="$(match_count "$ADDR2")"
echo "   recovered epoch=$POST_EPOCH edges=$POST_EDGES match_count=$POST_COUNT"

FAIL=0
[ "$POST_EPOCH" = "$PRE_EPOCH" ] || { echo "FAIL: epoch $POST_EPOCH != $PRE_EPOCH" >&2; FAIL=1; }
[ "$POST_EDGES" = "$PRE_EDGES" ] || { echo "FAIL: edges $POST_EDGES != $PRE_EDGES" >&2; FAIL=1; }
[ "$POST_COUNT" = "$PRE_COUNT" ] || { echo "FAIL: match count $POST_COUNT != $PRE_COUNT" >&2; FAIL=1; }
[ "$FAIL" = 0 ] || exit 1

# A post-recovery ingest must still work (the log accepts the next epoch).
curl -fsS -o /dev/null -X POST -H 'Content-Type: application/json' \
  -d '{"relabel":[[0,1]]}' "http://$ADDR2/ingest"
FINAL_EPOCH="$(stats_field "$ADDR2" epoch)"
if [ "$FINAL_EPOCH" != "$((POST_EPOCH + 1))" ]; then
  echo "FAIL: post-recovery ingest moved epoch to $FINAL_EPOCH, want $((POST_EPOCH + 1))" >&2
  exit 1
fi

echo "crash_restart_identical=true"
