package approxmatch_test

import (
	"fmt"

	"approxmatch"
)

// ExampleMatch searches a labeled triangle with one permitted edge deletion
// and prints each prototype's match count.
func ExampleMatch() {
	b := approxmatch.NewGraphBuilder(0)
	a := b.AddVertex(1)
	c := b.AddVertex(2)
	d := b.AddVertex(3)
	b.AddEdge(a, c)
	b.AddEdge(c, d)
	b.AddEdge(a, d)
	g := b.Build()

	tpl, _ := approxmatch.NewTemplate(
		[]approxmatch.Label{1, 2, 3},
		[]approxmatch.TemplateEdge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	opts := approxmatch.DefaultOptions(1)
	opts.CountMatches = true
	res, _ := approxmatch.Match(g, tpl, opts)
	for pi, p := range res.Set.Protos {
		fmt.Printf("δ=%d prototype %d: %d matches\n", p.Dist, pi, res.Solutions[pi].MatchCount)
	}
	// Output:
	// δ=0 prototype 0: 1 matches
	// δ=1 prototype 1: 1 matches
	// δ=1 prototype 2: 1 matches
	// δ=1 prototype 3: 1 matches
}

// ExampleExplore relaxes a triangle template until matches appear: the
// graph only contains a path, so the first matches show up at edit
// distance 1.
func ExampleExplore() {
	b := approxmatch.NewGraphBuilder(0)
	a := b.AddVertex(1)
	c := b.AddVertex(2)
	d := b.AddVertex(3)
	b.AddEdge(a, c)
	b.AddEdge(c, d)
	g := b.Build()

	tpl, _ := approxmatch.NewTemplate(
		[]approxmatch.Label{1, 2, 3},
		[]approxmatch.TemplateEdge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	res, _ := approxmatch.Explore(g, tpl, approxmatch.DefaultOptions(2))
	fmt.Printf("first matches at k=%d, %d vertices\n", res.FoundDist, res.MatchingVertices.Count())
	// Output:
	// first matches at k=1, 3 vertices
}

// ExamplePrototypes shows the prototype set of a labeled triangle: the
// base plus one path per deletable edge.
func ExamplePrototypes() {
	tpl, _ := approxmatch.NewTemplate(
		[]approxmatch.Label{1, 2, 3},
		[]approxmatch.TemplateEdge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	set, _ := approxmatch.Prototypes(tpl, 2)
	fmt.Printf("%d prototypes, deepest level %d\n", set.Count(), set.MaxDist)
	// Output:
	// 4 prototypes, deepest level 1
}

// ExampleCountMotifs counts the 3-vertex motifs of a 4-clique.
func ExampleCountMotifs() {
	b := approxmatch.NewGraphBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(approxmatch.VertexID(i), approxmatch.VertexID(j))
		}
	}
	counts, _ := approxmatch.CountMotifs(b.Build(), 3)
	pats, _ := approxmatch.MotifPatterns(3)
	for _, p := range pats.Protos {
		fmt.Printf("%d-edge motif: %d occurrences\n", p.Template.NumEdges(), counts[p.Canon])
	}
	// Output:
	// 3-edge motif: 4 occurrences
	// 2-edge motif: 0 occurrences
}
