GO ?= go

.PHONY: build test check bench fuzz-smoke loopback-smoke crash-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-commit gate: static analysis plus the
# race-detector suites for the concurrent parts of the tree (the serving
# layer — including the cross-query result cache, single-flight and
# warm/cold differential suites — the pipeline's cancellation/parallel
# paths, the canonicalization property tests backing the cache keys, and
# the distributed runtime's chaos and anytime-partial differential suites,
# including the real-socket TCP transport and coordinator suites).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/server/ ./internal/core/ ./internal/wal/
	$(GO) test -race -run 'Canonical' ./internal/pattern/
	$(GO) test -race -run 'Chaos|Partial|SharedCache|Coordinator|RankServer|DialGroup' ./internal/dist/...

# fuzz-smoke runs each native fuzz target for a short burst — enough to
# shake out loader/parser/ingest regressions on hostile input without a
# long fuzz campaign. Targets run one at a time: `go test -fuzz` refuses a pattern
# matching more than one target.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run '^$$' -fuzz '^FuzzApplyDelta$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/pattern/
	$(GO) test -run '^$$' -fuzz '^FuzzGenerate$$' -fuzztime $(FUZZTIME) ./internal/prototype/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME) ./internal/dist/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeEnvelope$$' -fuzztime $(FUZZTIME) ./internal/dist/
	$(GO) test -run '^$$' -fuzz '^FuzzReplayWAL$$' -fuzztime $(FUZZTIME) ./internal/wal/

# bench runs the Go micro-benchmarks and then the kernel benchmark harness,
# which times the core kernels sequential vs -workers, the end-to-end
# pipeline with compaction on/off, the resource-governance overhead
# (budget charging and bounded-cache eviction), the distributed engine's
# fault-tolerance overhead, the real-socket TCP rank transport's overhead
# (in-memory FT vs loopback sockets, clean and faulted), the serving
# layer's cold-vs-warm cross-query caching, the incremental
# delta-localized re-match vs a full recompute, the kernel redundancy
# eliminations (symmetry breaking + failure guards off vs on on symmetric
# templates, expansion counters and counts cross-checked), and the WAL
# durability overhead (append+fsync per sync policy, plus tail-replay vs
# checkpoint-bounded recovery time, recovered state signature-checked
# against the live graph) on a seeded R-MAT graph, and writes a
# machine-readable report to BENCH_PR10.json (including the cpu count, so
# single-core runs are honestly distinguishable from regressions).
bench:
	$(GO) test -run xxx -bench . ./internal/server/ ./internal/core/
	$(GO) run ./cmd/kernelbench -out BENCH_PR10.json

# loopback-smoke stands up a real multi-process deployment on loopback —
# four amatchrank workers plus an amatchd coordinator — and byte-diffs a
# routed /match response against a direct in-process server's.
loopback-smoke:
	./scripts/loopback_smoke.sh

# crash-smoke kill -9s a WAL-backed amatchd mid-ingest and asserts the
# restarted process recovers every acknowledged batch: same epoch, same
# /stats accounting, same /match counts.
crash-smoke:
	./scripts/crash_restart_smoke.sh
