GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-commit gate: static analysis plus the
# race-detector suites for the concurrent parts of the tree (the serving
# layer, the pipeline's cancellation/parallel paths, and the distributed
# runtime's chaos differential suite).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/server/ ./internal/core/
	$(GO) test -race -run Chaos ./internal/dist/...

# bench runs the Go micro-benchmarks and then the kernel benchmark harness,
# which times the core kernels sequential vs -workers, the end-to-end
# pipeline with compaction on/off, and the distributed engine's
# fault-tolerance overhead on a seeded R-MAT graph, and writes a
# machine-readable report to BENCH_PR4.json (including the cpu count, so
# single-core runs are honestly distinguishable from regressions).
bench:
	$(GO) test -run xxx -bench . ./internal/server/ ./internal/core/
	$(GO) run ./cmd/kernelbench -out BENCH_PR4.json
