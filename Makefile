GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-commit gate: static analysis plus the
# race-detector suites for the concurrent parts of the tree (the serving
# layer and the pipeline's cancellation/parallel paths).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/server/ ./internal/core/

bench:
	$(GO) test -run xxx -bench . ./internal/server/
