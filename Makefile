GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-commit gate: static analysis plus the
# race-detector suites for the concurrent parts of the tree (the serving
# layer and the pipeline's cancellation/parallel paths).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/server/ ./internal/core/

# bench runs the Go micro-benchmarks and then the kernel benchmark harness,
# which times the core kernels sequential vs -workers plus the end-to-end
# pipeline with compaction on/off on a seeded R-MAT graph, and writes a
# machine-readable report to BENCH_PR3.json (including the cpu count, so
# single-core runs are honestly distinguishable from regressions).
bench:
	$(GO) test -run xxx -bench . ./internal/server/ ./internal/core/
	$(GO) run ./cmd/kernelbench -out BENCH_PR3.json
