package approxmatch

// One benchmark per table/figure of the paper's evaluation (§5). These run
// on bench-sized synthetic datasets so `go test -bench=.` completes in
// minutes; cmd/experiments runs the full-size versions and prints the
// paper-style tables. Shape metrics (speedups, message counts, modeled
// times) are attached via b.ReportMetric.

import (
	"fmt"
	"sync"
	"testing"

	"approxmatch/internal/constraint"
	"approxmatch/internal/core"
	"approxmatch/internal/datagen"
	"approxmatch/internal/dist"
	"approxmatch/internal/graph"
	"approxmatch/internal/motif"
	"approxmatch/internal/naive"
	"approxmatch/internal/pattern"
	"approxmatch/internal/tle"
)

var (
	benchWDCOnce sync.Once
	benchWDCG    *graph.Graph
)

// benchWDC returns a shared bench-sized WDC-like graph.
func benchWDC() *graph.Graph {
	benchWDCOnce.Do(func() {
		cfg := datagen.DefaultWDCConfig()
		cfg.NumVertices = 6000
		cfg.PlantExact, cfg.PlantPartial, cfg.PlantNearClique = 10, 20, 3
		benchWDCG = datagen.WDC(cfg)
	})
	return benchWDCG
}

// BenchmarkFig4WeakScalingRMAT reproduces Fig. 4: R-MAT size and rank count
// growing together with the RMAT-1 pattern (k=2, 24 prototypes). The
// per-iteration metric work/rank/edge is the weak-scaling flatness signal.
func BenchmarkFig4WeakScalingRMAT(b *testing.B) {
	ranks := 2
	for scale := 9; scale <= 11; scale++ {
		g, tpl := datagen.RMATWithPattern(scale)
		b.Run(fmt.Sprintf("scale%d_ranks%d", scale, ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := dist.NewEngine(g, dist.Config{Ranks: ranks, RanksPerNode: 2})
				if _, err := dist.Run(e, tpl, dist.DefaultOptions(2)); err != nil {
					b.Fatal(err)
				}
				var maxWork int64
				for r := range e.ComputePerRank {
					if c := e.ComputePerRank[r].Load(); c > maxWork {
						maxWork = c
					}
				}
				b.ReportMetric(float64(maxWork)/float64(g.NumEdges()), "work/rank/edge")
			}
		})
		ranks *= 2
	}
}

// BenchmarkFig6StrongScalingWDC reproduces Fig. 6: fixed WDC-like input,
// growing rank counts, for WDC-1/2/3.
func BenchmarkFig6StrongScalingWDC(b *testing.B) {
	g := benchWDC()
	pats := []struct {
		name string
		tpl  *pattern.Template
		k    int
	}{
		{"WDC1", datagen.WDC1(), 2},
		{"WDC2", datagen.WDC2(), 2},
		{"WDC3", datagen.WDC3(), 2},
	}
	for _, p := range pats {
		for _, ranks := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s_ranks%d", p.name, ranks), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e := dist.NewEngine(g, dist.Config{Ranks: ranks, RanksPerNode: 4})
					if _, err := dist.Run(e, p.tpl, dist.DefaultOptions(p.k)); err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(dist.ModeledTime(e, dist.DefaultCostModel(), 4), "modeled-time")
				}
			})
		}
	}
}

// BenchmarkFig7NaiveVsHGT reproduces Fig. 7: the naïve per-prototype search
// vs the optimized pipeline across the paper's pattern/graph pairs.
func BenchmarkFig7NaiveVsHGT(b *testing.B) {
	rmatG, rmatT := datagen.RMATWithPattern(10)
	workloads := []struct {
		name string
		g    *graph.Graph
		tpl  *pattern.Template
		k    int
	}{
		{"RMAT-1", rmatG, rmatT, 2},
		{"WDC-1", benchWDC(), datagen.WDC1(), 2},
		{"WDC-2", benchWDC(), datagen.WDC2(), 2},
		{"WDC-3", benchWDC(), datagen.WDC3(), 2},
		{"RDT-1", benchReddit(), datagen.RDT1(), datagen.RDT1EditDistance},
		{"IMDB-1", benchIMDb(), datagen.IMDB1(), datagen.IMDB1EditDistance},
	}
	for _, wl := range workloads {
		b.Run(wl.name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := naive.Run(wl.g, wl.tpl, wl.k, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(wl.name+"/hgt", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(wl.g, wl.tpl, core.DefaultConfig(wl.k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchReddit() *graph.Graph {
	cfg := datagen.DefaultRedditConfig()
	cfg.NumAuthors, cfg.NumPosts, cfg.NumComments = 1500, 4000, 8000
	return datagen.Reddit(cfg)
}

func benchIMDb() *graph.Graph {
	cfg := datagen.DefaultIMDbConfig()
	cfg.NumMovies = 4000
	return datagen.IMDb(cfg)
}

// BenchmarkFig8Scenarios reproduces Fig. 8: WDC-3 under naïve / X (search
// space reduction) / Y (X + work recycling) / Z (Y + parallel prototypes).
func BenchmarkFig8Scenarios(b *testing.B) {
	g := benchWDC()
	tpl := datagen.WDC3()
	const k = 2
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := naive.Run(g, tpl, k, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("X-reduction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(g, tpl, core.Config{EditDistance: k, LabelPairRefinement: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Y-recycling", func(b *testing.B) {
		cfg := core.Config{EditDistance: k, LabelPairRefinement: true, WorkRecycling: true, FrequencyOrdering: true}
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(g, tpl, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Z-parallel", func(b *testing.B) {
		cfg := core.Config{EditDistance: k, LabelPairRefinement: true, WorkRecycling: true, FrequencyOrdering: true}
		for i := 0; i < b.N; i++ {
			if _, err := core.RunParallel(g, tpl, cfg, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9aLoadBalancing reproduces Fig. 9(a): distributed WDC-2 with
// and without the active-vertex reshuffle; the imbalance metric (max/mean
// per-rank work) is reported.
func BenchmarkFig9aLoadBalancing(b *testing.B) {
	g := benchWDC()
	tpl := datagen.WDC2()
	for _, lb := range []bool{false, true} {
		name := "NLB"
		if lb {
			name = "LB"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := dist.NewEngine(g, dist.Config{Ranks: 8, RanksPerNode: 4})
				opts := dist.DefaultOptions(2)
				opts.Rebalance = lb
				if _, err := dist.Run(e, tpl, opts); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(dist.LoadImbalance(e), "imbalance")
			}
		})
	}
}

// BenchmarkFig9bOrderings reproduces Fig. 9(b): constraint ordering by
// label frequency (NLCC message metric), and the match-enumeration
// extension vs re-enumeration.
func BenchmarkFig9bOrderings(b *testing.B) {
	g := benchWDC()
	tpl := datagen.WDC1()
	b.Run("constraint-order/template", func(b *testing.B) {
		cfg := core.Config{EditDistance: 2, WorkRecycling: true, LabelPairRefinement: true}
		for i := 0; i < b.N; i++ {
			res, err := core.Run(g, tpl, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Metrics.NLCCMessages), "nlcc-msgs")
		}
	})
	b.Run("constraint-order/frequency", func(b *testing.B) {
		cfg := core.Config{EditDistance: 2, WorkRecycling: true, LabelPairRefinement: true, FrequencyOrdering: true}
		for i := 0; i < b.N; i++ {
			res, err := core.Run(g, tpl, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Metrics.NLCCMessages), "nlcc-msgs")
		}
	})

	yt := datagen.PowerLaw(1000, 4, 104)
	_, res, err := motif.PipelineCounts(yt, 4, core.DefaultConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("enumeration/direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.CountAllMatches(res, nil)
		}
	})
	b.Run("enumeration/extended", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CountAllMatchesExtended(res, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTableDeployments reproduces the §5.4 deployment table: parallel
// prototype search on deployments of varying width over a fixed rank
// budget; rank-seconds is the CPU-hour analogue.
func BenchmarkTableDeployments(b *testing.B) {
	g := benchWDC()
	tpl := datagen.WDC3()
	full, err := core.Run(g, tpl, core.DefaultConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	var m core.Metrics
	mcs := core.MaxCandidateSet(g, tpl, &m)
	var templates []*pattern.Template
	for _, p := range full.Set.Protos {
		templates = append(templates, p.Template)
	}
	freq := constraint.LabelFreq{}
	for l, c := range g.LabelFrequencies() {
		freq[l] = c
	}
	for _, cfg := range []struct{ deployments, ranksEach int }{{1, 16}, {2, 8}, {4, 4}, {8, 2}} {
		b.Run(fmt.Sprintf("%dx%dranks", cfg.deployments, cfg.ranksEach), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := dist.SearchPrototypesParallel(mcs, templates, cfg.deployments, cfg.ranksEach, freq)
				b.ReportMetric(res.RankSeconds, "rank-seconds")
			}
		})
	}
}

// BenchmarkUseCaseReddit reproduces the §5.5 RDT-1 query.
func BenchmarkUseCaseReddit(b *testing.B) {
	g := benchReddit()
	tpl := datagen.RDT1()
	cfg := core.DefaultConfig(datagen.RDT1EditDistance)
	cfg.CountMatches = true
	for i := 0; i < b.N; i++ {
		res, err := core.Run(g, tpl, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalMatchCount()), "matches")
	}
}

// BenchmarkUseCaseIMDb reproduces the §5.5 IMDB-1 query.
func BenchmarkUseCaseIMDb(b *testing.B) {
	g := benchIMDb()
	tpl := datagen.IMDB1()
	cfg := core.DefaultConfig(datagen.IMDB1EditDistance)
	cfg.CountMatches = true
	for i := 0; i < b.N; i++ {
		res, err := core.Run(g, tpl, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalMatchCount()), "matches")
	}
}

// BenchmarkUseCaseExploratory reproduces the §5.5 WDC-4 top-down search.
func BenchmarkUseCaseExploratory(b *testing.B) {
	g := benchWDC()
	tpl := datagen.WDC4()
	for i := 0; i < b.N; i++ {
		res, err := core.RunTopDown(g, tpl, core.DefaultConfig(4))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.FoundDist), "found-at-k")
	}
}

// BenchmarkTableArabesque reproduces the §5.6 comparison: the TLE baseline
// vs the pipeline for 3- and 4-motifs on CiteSeer-like and a social-like
// graph, including the TLE embedding-budget OOM on the denser input.
func BenchmarkTableArabesque(b *testing.B) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"citeseer", datagen.CiteSeerLike()},
		{"social", datagen.PowerLaw(1200, 4, 104)},
	}
	for _, entry := range graphs {
		for _, size := range []int{3, 4} {
			b.Run(fmt.Sprintf("%s/%dmotif/tle", entry.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := tle.CountMotifs(entry.g, size, tle.Config{}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/%dmotif/hgt", entry.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := motif.PipelineCounts(entry.g, size, core.DefaultConfig(0)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	b.Run("dense/4motif/tle-oom", func(b *testing.B) {
		g := datagen.PowerLaw(3000, 7, 105)
		for i := 0; i < b.N; i++ {
			if _, _, err := tle.CountMotifs(g, 4, tle.Config{MaxEmbeddings: 200000}); err != tle.ErrOutOfMemory {
				b.Fatalf("expected OOM, got %v", err)
			}
		}
	})
}

// BenchmarkTableMessages reproduces the §5.7 message table: naïve vs HGT
// message totals on WDC-2.
func BenchmarkTableMessages(b *testing.B) {
	g := benchWDC()
	tpl := datagen.WDC2()
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := naive.Run(g, tpl, 2, false)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Metrics.TotalMessages()), "messages")
		}
	})
	b.Run("hgt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Run(g, tpl, core.DefaultConfig(2))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Metrics.TotalMessages()), "messages")
		}
	})
}

// BenchmarkFig11Memory reproduces the Fig. 11 accounting: topology vs
// algorithm-state bytes.
func BenchmarkFig11Memory(b *testing.B) {
	g := benchWDC()
	tpl := datagen.WDC2()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(g, tpl, core.DefaultConfig(2))
		if err != nil {
			b.Fatal(err)
		}
		var state int64
		for _, sol := range res.Solutions {
			state += sol.Verts.Bytes() + sol.Edges.Bytes()
		}
		state += res.Rho.Bytes()
		b.ReportMetric(float64(g.TopologyBytes()), "topology-bytes")
		b.ReportMetric(float64(state), "state-bytes")
	}
}

// BenchmarkFig12Locality reproduces the Fig. 12 locality sweep: modeled
// runtime of a fixed partitioning under different node groupings.
func BenchmarkFig12Locality(b *testing.B) {
	g := benchWDC()
	tpl := datagen.WDC2()
	e := dist.NewEngine(g, dist.Config{Ranks: 48, RanksPerNode: 8, DelegateThreshold: 512})
	if _, err := dist.Run(e, tpl, dist.DefaultOptions(2)); err != nil {
		b.Fatal(err)
	}
	cm := dist.DefaultCostModel()
	cm.CoresPerNode = 8
	for _, rpn := range []int{48, 8, 1} {
		b.Run(fmt.Sprintf("ranksPerNode%d", rpn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(dist.ModeledTime(e, cm, rpn), "modeled-time")
			}
		})
	}
}
