package approxmatch

import (
	"strings"
	"testing"
)

// buildToyGraph returns a small labeled graph containing one exact triangle
// (1-2-3) and one approximate one missing an edge.
func buildToyGraph() *Graph {
	b := NewGraphBuilder(0)
	// Exact instance.
	a0 := b.AddVertex(1)
	a1 := b.AddVertex(2)
	a2 := b.AddVertex(3)
	b.AddEdge(a0, a1)
	b.AddEdge(a1, a2)
	b.AddEdge(a0, a2)
	// Approximate instance: missing the 1-3 edge.
	c0 := b.AddVertex(1)
	c1 := b.AddVertex(2)
	c2 := b.AddVertex(3)
	b.AddEdge(c0, c1)
	b.AddEdge(c1, c2)
	// Noise.
	n0 := b.AddVertex(9)
	b.AddEdge(n0, a0)
	return b.Build()
}

func triangleTemplate(t *testing.T) *Template {
	t.Helper()
	tp, err := NewTemplate([]Label{1, 2, 3},
		[]TemplateEdge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestMatchEndToEnd(t *testing.T) {
	g := buildToyGraph()
	tp := triangleTemplate(t)
	opts := DefaultOptions(1)
	opts.CountMatches = true
	res, err := Match(g, tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 4 prototypes: triangle + 3 paths (distinct labels).
	if res.Set.Count() != 4 {
		t.Fatalf("prototypes = %d", res.Set.Count())
	}
	// The exact triangle's vertices match the base prototype.
	for v := VertexID(0); v < 3; v++ {
		if !res.Rho.Get(int(v), 0) {
			t.Errorf("vertex %d should match the base prototype", v)
		}
	}
	// The approximate instance matches only the path prototype missing the
	// 1-3 edge.
	if res.Rho.Get(3, 0) {
		t.Error("approximate instance must not match the exact template")
	}
	if len(res.MatchVector(3)) == 0 {
		t.Error("approximate instance should match some k=1 prototype")
	}
	// Noise vertex matches nothing.
	if len(res.MatchVector(6)) != 0 {
		t.Error("noise vertex matched")
	}
	if res.TotalMatchCount() <= 0 {
		t.Error("no matches counted")
	}
}

func TestExploreEndToEnd(t *testing.T) {
	// Graph has only the approximate instance: exploration must relax to
	// k=1 before finding it.
	b := NewGraphBuilder(0)
	c0 := b.AddVertex(1)
	c1 := b.AddVertex(2)
	c2 := b.AddVertex(3)
	b.AddEdge(c0, c1)
	b.AddEdge(c1, c2)
	g := b.Build()
	tp := triangleTemplate(t)
	res, err := Explore(g, tp, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.FoundDist != 1 {
		t.Fatalf("FoundDist = %d, want 1", res.FoundDist)
	}
	if res.MatchingVertices.Count() != 3 {
		t.Errorf("matching vertices = %d", res.MatchingVertices.Count())
	}
}

func TestMatchDistributedAgrees(t *testing.T) {
	g := buildToyGraph()
	tp := triangleTemplate(t)
	seq, err := Match(g, tp, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	e := NewDistEngine(g, DistConfig{Ranks: 3, RanksPerNode: 2})
	dres, err := MatchDistributed(e, tp, DistOptions{EditDistance: 1, WorkRecycling: true})
	if err != nil {
		t.Fatal(err)
	}
	for pi := range seq.Set.Protos {
		if !dres.Solutions[pi].Verts.Equal(seq.Solutions[pi].Verts) {
			t.Errorf("proto %d differs between engines", pi)
		}
	}
	if e.Stats.Total() == 0 {
		t.Error("no messages accounted")
	}
}

func TestCountMotifsFacade(t *testing.T) {
	// K4: one 3-motif class (triangle ×4).
	b := NewGraphBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(VertexID(i), VertexID(j))
		}
	}
	g := b.Build()
	counts, err := CountMotifs(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Errorf("K4 3-motif occurrences = %d, want 4", total)
	}
	pats, err := MotifPatterns(3)
	if err != nil {
		t.Fatal(err)
	}
	if pats.Count() != 2 {
		t.Errorf("3-vertex motif classes = %d, want 2", pats.Count())
	}
	for _, p := range pats.Protos {
		if _, ok := counts[p.Canon]; !ok {
			t.Errorf("pattern %q missing from counts", p.Canon)
		}
	}
}

func TestPrototypesFacade(t *testing.T) {
	tp := triangleTemplate(t)
	set, err := Prototypes(tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 4 || set.MaxDist != 1 {
		t.Errorf("set = %d protos, maxdist %d", set.Count(), set.MaxDist)
	}
}

func TestMandatoryFacade(t *testing.T) {
	tp, err := NewTemplateWithMandatory(
		[]Label{1, 2, 3},
		[]TemplateEdge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}},
		[]bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	set, err := Prototypes(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 3 {
		t.Errorf("mandatory prototypes = %d, want 3", set.Count())
	}
}

func TestWildcardFacade(t *testing.T) {
	b := NewGraphBuilder(0)
	v0 := b.AddVertex(1)
	v1 := b.AddVertex(42) // arbitrary middle label
	v2 := b.AddVertex(3)
	b.AddEdge(v0, v1)
	b.AddEdge(v1, v2)
	g := b.Build()
	tpl, err := NewTemplate([]Label{1, Wildcard, 3},
		[]TemplateEdge{{I: 0, J: 1}, {I: 1, J: 2}})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(0)
	opts.CountMatches = true
	res, err := Match(g, tpl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMatchCount() != 1 {
		t.Errorf("wildcard match count = %d", res.TotalMatchCount())
	}
}

func TestEdgeLabeledFacade(t *testing.T) {
	b := NewGraphBuilder(0)
	v0 := b.AddVertex(1)
	v1 := b.AddVertex(2)
	v2 := b.AddVertex(2)
	b.AddEdgeLabeled(v0, v1, 7)
	b.AddEdgeLabeled(v0, v2, 8)
	g := b.Build()
	tpl, err := NewTemplateEdgeLabeled([]Label{1, 2},
		[]TemplateEdge{{I: 0, J: 1}}, []Label{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(0)
	opts.CountMatches = true
	res, err := Match(g, tpl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMatchCount() != 1 {
		t.Errorf("edge-labeled match count = %d", res.TotalMatchCount())
	}
	if res.Rho.Get(int(v2), 0) {
		t.Error("vertex on wrong-label edge matched")
	}
}

func TestReplicaSetFacade(t *testing.T) {
	g := buildToyGraph()
	tpl := triangleTemplate(t)
	res, err := Match(g, tpl, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewReplicaSet(g, res.Candidate, 2, DistConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	var templates []*Template
	for _, p := range res.Set.Protos {
		templates = append(templates, p.Template)
	}
	sols := rs.Search(templates, nil, DistOptions{})
	for pi := range templates {
		if !sols[pi].Verts.Equal(res.Solutions[pi].Verts) {
			t.Errorf("replica result %d differs from pipeline", pi)
		}
	}
}

func TestFeatureExportFacade(t *testing.T) {
	g := buildToyGraph()
	tpl := triangleTemplate(t)
	res, err := Match(g, tpl, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteFeaturesCSV(&sb, FeatureOptions{OnlyMatching: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "vertex,p0") {
		t.Errorf("csv header: %q", sb.String()[:20])
	}
	counts := res.ParticipationCounts(0)
	if counts[0] == 0 {
		t.Error("vertex 0 should participate in the exact triangle")
	}
}
