// Social-network analysis (§5.5 of the paper, query RDT-1): find
// adversarial poster–commenter structures in a Reddit-like typed graph —
// an author whose upvoted post drew a negative-balance comment and whose
// downvoted post drew a positive one, the posts under different subreddits.
// Author-post and author-comment edges are optional, so matches within one
// edge deletion are reported too.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"approxmatch"
	"approxmatch/internal/datagen"
)

func main() {
	cfg := datagen.DefaultRedditConfig()
	cfg.NumAuthors, cfg.NumPosts, cfg.NumComments = 2000, 6000, 12000
	g := datagen.Reddit(cfg)
	fmt.Printf("Reddit-like graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	tpl := datagen.RDT1()
	opts := approxmatch.DefaultOptions(datagen.RDT1EditDistance)
	opts.CountMatches = true
	res, err := approxmatch.Match(g, tpl, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("prototypes: %d (the paper's RDT-1 has 5)\n", res.Set.Count())
	var precise, total int64
	for pi, p := range res.Set.Protos {
		c := res.Solutions[pi].MatchCount
		total += c
		if p.Dist == 0 {
			precise += c
		}
		fmt.Printf("  δ=%d proto %d: %d matches, %d vertices involved\n",
			p.Dist, pi, c, res.Solutions[pi].Verts.Count())
	}
	fmt.Printf("total matches: %d (including %d precise)\n", total, precise)

	// List a few matched author vertices (template vertex 0 is the author).
	fmt.Println("sample adversarial authors:")
	shown := 0
	res.EnumerateMatches(0, func(m []approxmatch.VertexID) bool {
		fmt.Printf("  author v%d with posts v%d/v%d under subreddits v%d/v%d\n",
			m[0], m[1], m[2], m[5], m[6])
		shown++
		return shown < 5
	})
}
