// Bulk labeling for machine learning (usage scenario S4 of the paper):
// label every vertex of a webgraph with its membership in each prototype of
// a search template — a binary feature vector per vertex, produced in one
// high-throughput pipeline run rather than per-vertex queries.
//
//	go run ./examples/bulklabel
package main

import (
	"fmt"
	"log"

	"approxmatch"
	"approxmatch/internal/datagen"
)

func main() {
	cfg := datagen.DefaultWDCConfig()
	cfg.NumVertices = 15000
	cfg.PlantExact, cfg.PlantPartial = 30, 60
	g := datagen.WDC(cfg)
	fmt.Printf("webgraph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	tpl := datagen.WDC1()
	res, err := approxmatch.Match(g, tpl, approxmatch.DefaultOptions(2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("feature width: %d prototypes (k ≤ %d)\n", res.Set.Count(), res.Set.MaxDist)
	fmt.Printf("labels generated: %d over %d labeled vertices\n",
		res.LabelsGenerated(), res.UnionVertices().Count())

	// Export a few non-trivial feature vectors the way an ML pipeline
	// would consume them: vertex id, then one 0/1 column per prototype.
	fmt.Println("sample feature rows (vertex, then one column per prototype):")
	printed := 0
	res.UnionVertices().ForEach(func(v int) {
		if printed >= 5 {
			return
		}
		printed++
		fmt.Printf("  v%-8d", v)
		for pi := 0; pi < res.Set.Count(); pi++ {
			bit := 0
			if res.Rho.Get(v, pi) {
				bit = 1
			}
			fmt.Printf(" %d", bit)
		}
		fmt.Println()
	})

	// Feature statistics: how discriminative is each prototype column?
	fmt.Println("per-prototype positives:")
	for pi, p := range res.Set.Protos {
		fmt.Printf("  δ=%d proto %-3d: %d vertices\n", p.Dist, pi, res.Rho.ColCount(pi))
	}
}
