// Fraud-ring detection with edge labels and wildcards: the background graph
// is a financial network whose vertices are accounts, merchants and devices
// and whose EDGES carry relationship labels (owns / pays / logs-in-from).
// The query looks for two accounts sharing a device (login edges) where
// both accounts pay the same merchant — with one of the two payment edges
// optional, so rings that have only completed one payment are surfaced as
// 1-edit approximate matches. This exercises the edge-labeled
// generalization the paper sketches in §2 and the wildcard extension of
// §3.1.
//
//	go run ./examples/fraudrings
package main

import (
	"fmt"
	"log"
	"math/rand"

	"approxmatch"
)

const (
	labelAccount  = 1
	labelMerchant = 2
	labelDevice   = 3

	relOwns  = 1
	relPays  = 2
	relLogin = 3
)

func main() {
	g := buildNetwork()
	fmt.Printf("financial network: %d vertices, %d edges (edge-labeled: %v)\n",
		g.NumVertices(), g.NumEdges(), g.HasEdgeLabels())

	// Template: accounts A1, A2 both log in from device D; both pay
	// merchant M. The login and first payment edges are mandatory; the
	// second payment edge is optional (k=1).
	tpl, err := approxmatch.NewTemplateEdgeLabeled(
		[]approxmatch.Label{labelAccount, labelAccount, labelDevice, labelMerchant},
		[]approxmatch.TemplateEdge{
			{I: 0, J: 2}, // A1 -login- D
			{I: 1, J: 2}, // A2 -login- D
			{I: 0, J: 3}, // A1 -pays- M
			{I: 1, J: 3}, // A2 -pays- M (optional)
		},
		[]approxmatch.Label{relLogin, relLogin, relPays, relPays},
		[]bool{true, true, true, false},
	)
	if err != nil {
		log.Fatal(err)
	}

	opts := approxmatch.DefaultOptions(1)
	opts.CountMatches = true
	res, err := approxmatch.Match(g, tpl, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prototypes: %d\n", res.Set.Count())
	for pi, p := range res.Set.Protos {
		kind := "complete ring"
		if p.Dist > 0 {
			kind = "ring with one pending payment"
		}
		fmt.Printf("  δ=%d (%s): %d matches across %d vertices\n",
			p.Dist, kind, res.Solutions[pi].MatchCount, res.Solutions[pi].Verts.Count())
	}

	fmt.Println("sample rings (A1, A2, device, merchant):")
	shown := 0
	res.EnumerateMatches(0, func(m []approxmatch.VertexID) bool {
		if m[0] < m[1] { // each ring appears twice under A1/A2 swap
			fmt.Printf("  accounts v%d & v%d via device v%d paying merchant v%d\n",
				m[0], m[1], m[2], m[3])
			shown++
		}
		return shown < 5
	})
}

// buildNetwork generates the synthetic financial network with planted
// fraud rings.
func buildNetwork() *approxmatch.Graph {
	rng := rand.New(rand.NewSource(99))
	b := approxmatch.NewGraphBuilder(0)
	var accounts, merchants, devices []approxmatch.VertexID
	for i := 0; i < 3000; i++ {
		accounts = append(accounts, b.AddVertex(labelAccount))
	}
	for i := 0; i < 200; i++ {
		merchants = append(merchants, b.AddVertex(labelMerchant))
	}
	for i := 0; i < 1500; i++ {
		devices = append(devices, b.AddVertex(labelDevice))
	}
	// Normal activity: accounts own devices, log in from them, pay
	// merchants.
	for _, a := range accounts {
		d := devices[rng.Intn(len(devices))]
		b.AddEdgeLabeled(a, d, relOwns)
		b.AddEdgeLabeled(a, d, relLogin) // multi-relation collapses to max label
		for j := 0; j < 1+rng.Intn(3); j++ {
			b.AddEdgeLabeled(a, merchants[rng.Intn(len(merchants))], relPays)
		}
	}
	// Planted rings: two fresh accounts sharing a fresh device; some rings
	// have both payments, some only one (the approximate matches).
	for i := 0; i < 12; i++ {
		a1 := b.AddVertex(labelAccount)
		a2 := b.AddVertex(labelAccount)
		d := b.AddVertex(labelDevice)
		m := merchants[rng.Intn(len(merchants))]
		b.AddEdgeLabeled(a1, d, relLogin)
		b.AddEdgeLabeled(a2, d, relLogin)
		b.AddEdgeLabeled(a1, m, relPays)
		if i%2 == 0 {
			b.AddEdgeLabeled(a2, m, relPays)
		}
	}
	return b.Build()
}
