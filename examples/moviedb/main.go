// Information mining (§5.5 of the paper, query IMDB-1): in an IMDb-like
// bipartite metadata graph, find actress/actor/director/2×movie tuples
// where both movies are recent Sport-genre releases and at least one
// person kept the same role in both movies (the second-movie person edges
// are optional; up to two may be missing).
//
//	go run ./examples/moviedb
package main

import (
	"fmt"
	"log"

	"approxmatch"
	"approxmatch/internal/datagen"
)

func main() {
	cfg := datagen.DefaultIMDbConfig()
	g := datagen.IMDb(cfg)
	fmt.Printf("IMDb-like graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	tpl := datagen.IMDB1()
	opts := approxmatch.DefaultOptions(datagen.IMDB1EditDistance)
	opts.CountMatches = true
	res, err := approxmatch.Match(g, tpl, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("prototypes: %d (the paper's IMDB-1 has 7)\n", res.Set.Count())
	var precise, total int64
	for pi, p := range res.Set.Protos {
		c := res.Solutions[pi].MatchCount
		total += c
		if p.Dist == 0 {
			precise += c
		}
	}
	fmt.Printf("total matches: %d (including %d precise)\n", total, precise)

	// Which movies participate in any prototype? Use the union of solution
	// subgraphs and filter by label.
	union := res.UnionVertices()
	movies := 0
	union.ForEach(func(v int) {
		if g.Label(approxmatch.VertexID(v)) == datagen.IMDbMovieRecent {
			movies++
		}
	})
	fmt.Printf("recent Sport movies involved in tuples: %d\n", movies)
}
