// Live-graph ingest and incremental re-matching: a transaction network
// receives a stream of mutation batches — new payment edges, closed
// accounts' edges deleted, accounts re-flagged — and a standing fraud-ring
// query is kept current after every batch WITHOUT recomputing from scratch.
//
// Each batch goes through the epoch-snapshot machinery (NewSnapshotStore /
// ApplyDelta): the next-epoch graph is built off to the side and swapped in
// atomically, so concurrent readers of the previous epoch are never
// disturbed. MatchIncremental then maintains the standing result by
// re-running the pipeline only inside a bounded region around the change
// (two restricted runs over ball(changed, 2r)), and the example verifies
// after every batch that the maintained result is bit-identical to a
// from-scratch run — the incremental path's contract.
//
//	go run ./examples/liveingest
package main

import (
	"fmt"
	"log"
	"math/rand"

	"approxmatch"
)

const (
	labelAccount = 1
	labelFlagged = 2
	labelDevice  = 3
)

func main() {
	// Degree-order the internal ids (the kernels' cache-locality layout);
	// the mutation batches below are still built in the original external
	// ids — like a wire client would — and translated at the boundary.
	g := approxmatch.RelabelByDegree(buildNetwork())
	store := approxmatch.NewSnapshotStore(g)
	fmt.Printf("transaction network: %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges())

	// Standing query: two accounts sharing a device, one of them flagged —
	// with one sharing edge optional (k=1), so near-rings surface too.
	tpl, err := approxmatch.NewTemplate(
		[]approxmatch.Label{labelAccount, labelFlagged, labelDevice},
		[]approxmatch.TemplateEdge{
			{I: 0, J: 2},
			{I: 1, J: 2},
			{I: 0, J: 1},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	opts := approxmatch.DefaultOptions(1)
	opts.CountMatches = true

	res, err := approxmatch.Match(store.Current(), tpl, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d: %s\n", store.Epoch(), summarize(res))

	rng := rand.New(rand.NewSource(7))
	for batch := 1; batch <= 5; batch++ {
		// Pin the pre-delta epoch: this is what an in-flight query would
		// read while the writer publishes the next epoch underneath it.
		snap := store.Acquire()

		d := randomBatch(rng, snap.Graph())
		epoch, changed, err := store.Apply(
			approxmatch.TranslateDeltaToInternal(snap.Graph(), d))
		if err != nil {
			log.Fatal(err)
		}

		next, stats, err := approxmatch.MatchIncremental(res, store.Current(), changed, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: +%d/-%d edges, %d relabels -> %s  (re-ran %d of %d vertices, r=%d)\n",
			epoch, len(d.Insert), len(d.Delete), len(d.Relabels),
			summarize(next), stats.RegionVertices, snap.Graph().NumVertices(), stats.Radius)

		// The contract: incrementally maintained == recomputed from scratch.
		scratch, err := approxmatch.Match(store.Current(), tpl, opts)
		if err != nil {
			log.Fatal(err)
		}
		if !next.Rho.Equal(scratch.Rho) {
			log.Fatal("incremental result diverged from from-scratch run")
		}
		for pi := range scratch.Solutions {
			if next.Solutions[pi].MatchCount != scratch.Solutions[pi].MatchCount {
				log.Fatalf("prototype %d: incremental count %d, scratch %d",
					pi, next.Solutions[pi].MatchCount, scratch.Solutions[pi].MatchCount)
			}
		}

		snap.Release()
		res = next
	}
	fmt.Println("all batches: incremental results bit-identical to from-scratch runs")
}

// summarize renders the standing query's per-prototype counts.
func summarize(res *approxmatch.Result) string {
	s := ""
	for pi, sol := range res.Solutions {
		if pi > 0 {
			s += ", "
		}
		s += fmt.Sprintf("proto %d: %d matches", pi, sol.MatchCount)
	}
	return s
}

// randomBatch builds a small valid mutation batch: new device-sharing or
// account-to-account edges, a deletion of an existing edge, and a flag flip.
// The batch is recorded in EXTERNAL vertex ids — what an ingest client that
// only knows the original input ids would send — and must therefore pass
// through TranslateDeltaToInternal before ApplyDelta/Apply.
func randomBatch(rng *rand.Rand, g *approxmatch.Graph) *approxmatch.Delta {
	n := g.NumVertices()
	b := approxmatch.NewDeltaBuilder()
	for tries, added := 0, 0; tries < 50 && added < 2; tries++ {
		u := approxmatch.VertexID(rng.Intn(n))
		v := approxmatch.VertexID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		b.InsertEdge(g.ExternalID(u), g.ExternalID(v))
		added++
		// One insert per pair: re-picking the same pair would make the
		// batch self-conflicting, so stop early rather than dedup.
		break
	}
	for tries := 0; tries < 50; tries++ {
		u := approxmatch.VertexID(rng.Intn(n))
		nb := g.Neighbors(u)
		if len(nb) == 0 {
			continue
		}
		b.DeleteEdge(g.ExternalID(u), g.ExternalID(nb[rng.Intn(len(nb))]))
		break
	}
	v := approxmatch.VertexID(rng.Intn(n))
	if g.Label(v) == labelAccount {
		b.RelabelVertex(g.ExternalID(v), labelFlagged)
	} else if g.Label(v) == labelFlagged {
		b.RelabelVertex(g.ExternalID(v), labelAccount)
	}
	return b.Delta()
}

// buildNetwork assembles a deterministic account/device graph: account
// pairs sharing devices, a few flagged accounts, and some account-level
// links.
func buildNetwork() *approxmatch.Graph {
	rng := rand.New(rand.NewSource(3))
	b := approxmatch.NewGraphBuilder(0)
	const accounts, devices = 60, 20
	acct := make([]approxmatch.VertexID, accounts)
	for i := range acct {
		l := approxmatch.Label(labelAccount)
		if i%9 == 0 {
			l = labelFlagged
		}
		acct[i] = b.AddVertex(l)
	}
	dev := make([]approxmatch.VertexID, devices)
	for i := range dev {
		dev[i] = b.AddVertex(labelDevice)
	}
	for i, a := range acct {
		b.AddEdge(a, dev[i%devices])
		if rng.Intn(3) == 0 {
			b.AddEdge(a, dev[rng.Intn(devices)])
		}
	}
	for i := 0; i+1 < len(acct); i += 4 {
		b.AddEdge(acct[i], acct[i+1])
	}
	return b.Build()
}
