// Motif counting (§5.6 of the paper): count 3- and 4-vertex network motifs
// in an unlabeled social-network-like graph with the matching pipeline, and
// compare against the TLE (Arabesque-style) baseline.
//
//	go run ./examples/motifs
package main

import (
	"fmt"
	"log"
	"time"

	"approxmatch"
	"approxmatch/internal/datagen"
	"approxmatch/internal/tle"
)

func main() {
	g := datagen.PowerLaw(4000, 4, 42)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	for _, size := range []int{3, 4} {
		start := time.Now()
		counts, err := approxmatch.CountMotifs(g, size)
		if err != nil {
			log.Fatal(err)
		}
		hgt := time.Since(start)

		start = time.Now()
		tleCounts, _, err := tle.CountMotifs(g, size, tle.Config{})
		if err != nil {
			log.Fatal(err)
		}
		tleTime := time.Since(start)

		pats, err := approxmatch.MotifPatterns(size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-motifs (pipeline %v, TLE baseline %v):\n", size, hgt.Round(time.Millisecond), tleTime.Round(time.Millisecond))
		for _, p := range pats.Protos {
			agree := "OK"
			if counts[p.Canon] != tleCounts[p.Canon] {
				agree = "MISMATCH"
			}
			fmt.Printf("  %d edges: %12d occurrences [%s]\n",
				p.Template.NumEdges(), counts[p.Canon], agree)
		}
	}
}
