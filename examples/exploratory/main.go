// Exploratory search (§5.5 of the paper, WDC-4): the user starts from an
// undirected 6-Clique over the frequent "org" domain label in a webgraph
// and lets the system relax the pattern one edge deletion at a time until
// the first matches appear — the top-down search mode.
//
//	go run ./examples/exploratory
package main

import (
	"fmt"
	"log"

	"approxmatch"
	"approxmatch/internal/datagen"
)

func main() {
	cfg := datagen.DefaultWDCConfig()
	cfg.NumVertices = 20000
	cfg.PlantExact = 0
	cfg.PlantPartial = 0
	cfg.PlantNearClique = 3 // the structures the exploration will discover
	g := datagen.WDC(cfg)
	fmt.Printf("WDC-like webgraph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	tpl := datagen.WDC4() // 6-clique on label org
	set, err := approxmatch.Prototypes(tpl, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prototype universe within k=4: %d edge-subset prototypes (the paper's 1,941), %d isomorphism classes searched\n",
		set.MaskCount(), set.Count())

	res, err := approxmatch.Explore(g, tpl, approxmatch.DefaultOptions(4))
	if err != nil {
		log.Fatal(err)
	}
	if res.FoundDist < 0 {
		fmt.Println("no matches within k=4; the search examined", res.PrototypesSearched, "prototypes")
		return
	}
	fmt.Printf("first matches at edit distance %d after searching %d prototypes\n",
		res.FoundDist, res.PrototypesSearched)
	fmt.Printf("%d vertices participate in matches at that distance\n",
		res.MatchingVertices.Count())
	for _, lvl := range res.Levels {
		fmt.Printf("  δ=%d: %d prototypes, %d matching vertices, %v\n",
			lvl.Dist, lvl.Prototypes, lvl.ActiveVertices, lvl.Duration.Round(1000))
	}
}
