// Quickstart: build a tiny labeled graph, search a triangle template within
// edit-distance 1, and print per-vertex prototype match vectors.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"approxmatch"
)

func main() {
	// Background graph: an exact triangle (persons 0-1-2), an approximate
	// one missing an edge (3-4-5), and unrelated noise.
	b := approxmatch.NewGraphBuilder(0)
	const (
		labelAccount  = 1
		labelMerchant = 2
		labelDevice   = 3
		labelOther    = 9
	)
	a0 := b.AddVertex(labelAccount)
	a1 := b.AddVertex(labelMerchant)
	a2 := b.AddVertex(labelDevice)
	b.AddEdge(a0, a1)
	b.AddEdge(a1, a2)
	b.AddEdge(a0, a2)

	c0 := b.AddVertex(labelAccount)
	c1 := b.AddVertex(labelMerchant)
	c2 := b.AddVertex(labelDevice)
	b.AddEdge(c0, c1)
	b.AddEdge(c1, c2) // account-device edge missing: a 1-edit match

	n0 := b.AddVertex(labelOther)
	b.AddEdge(n0, a0)
	g := b.Build()

	// Search template: account-merchant-device triangle.
	tpl, err := approxmatch.NewTemplate(
		[]approxmatch.Label{labelAccount, labelMerchant, labelDevice},
		[]approxmatch.TemplateEdge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	if err != nil {
		log.Fatal(err)
	}

	opts := approxmatch.DefaultOptions(1) // allow one missing edge
	opts.CountMatches = true
	res, err := approxmatch.Match(g, tpl, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("prototypes searched: %d (edit distance <= %d)\n",
		res.Set.Count(), res.Set.MaxDist)
	for pi, p := range res.Set.Protos {
		fmt.Printf("  proto %d (δ=%d): %d matching vertices, %d matches\n",
			pi, p.Dist, res.Solutions[pi].Verts.Count(), res.Solutions[pi].MatchCount)
	}
	fmt.Println("per-vertex match vectors (vertex: prototype ids):")
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Printf("  v%d (label %d): %v\n", v, g.Label(approxmatch.VertexID(v)),
			res.MatchVector(approxmatch.VertexID(v)))
	}
}
