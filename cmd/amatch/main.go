// Command amatch runs an approximate pattern-matching query: it loads a
// background graph (edge-list format) and a search template, searches all
// prototypes within the given edit distance, and reports per-prototype
// solution sizes, match counts and (optionally) per-vertex match vectors.
//
// Usage:
//
//	amatch -graph g.txt -template t.txt -k 2 [-count] [-labels] [-topdown]
//	       [-ranks N] [-flips] [-features out.csv [-rates]] [-matches out.tsv]
//	       [-timeout 30s] [-compact-below 0.5]
//	       [-no-symmetry] [-no-guards] [-no-relabel]
//
// The search honors -timeout and Ctrl-C: cancellation stops the pipeline
// mid-phase instead of running the query to completion.
//
// Passing several comma-separated files to -template enters batch mode: the
// graph is loaded once and every template is matched in turn, sharing one
// NLCC work-recycling store (-shared-nlcc) and answering templates
// isomorphic to an earlier one from the retained result
// (-result-cache-bytes) instead of re-running the pipeline.
//
// Graph format: "# vertices N", "v <id> <label>", "<u> <v>" edge lines.
// Template format: "v <index> <label>", "e <i> <j> [mandatory]".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"approxmatch"
	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("amatch: ")
	var (
		graphPath    = flag.String("graph", "", "background graph edge-list file (required)")
		templatePath = flag.String("template", "", "search template file (required)")
		k            = flag.Int("k", 1, "edit distance (edge deletions)")
		count        = flag.Bool("count", false, "enumerate and count matches per prototype")
		labels       = flag.Bool("labels", false, "print per-vertex match vectors")
		topdown      = flag.Bool("topdown", false, "exploratory mode: grow k until matches appear")
		ranks        = flag.Int("ranks", 0, "run on the distributed engine with this many ranks (0 = sequential)")
		featuresOut  = flag.String("features", "", "write per-vertex prototype feature CSV to this file")
		rates        = flag.Bool("rates", false, "export participation counts instead of 0/1 bits (with -features)")
		matchesOut   = flag.String("matches", "", "write the base prototype's match enumeration (TSV) to this file")
		flips        = flag.Bool("flips", false, "also search single-edge-flip variants of the template")
		timeout      = flag.Duration("timeout", 0, "abort the search after this long (0 = no limit)")
		workers      = flag.Int("workers", 0, "worker count for the per-vertex constraint-checking kernels (0 = sequential)")
		compactBelow = flag.Float64("compact-below", 0.5, "compact the search state into a dense graph view when its active fraction drops below this threshold (0 disables)")
		maxWork      = flag.Int64("max-work", 0, "abort the search after this many pipeline work units, keeping completed levels as an exact partial result (0 = no limit)")
		maxBytes     = flag.Int64("max-bytes", 0, "bound the search's auxiliary allocations (state clones, compacted views) to this many bytes (0 = no limit)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "bound the work-recycling cache to this many bytes, evicting least-recently-used entries (0 = unbounded)")
		sharedNLCC   = flag.Bool("shared-nlcc", true, "with multiple -template files, share one work-recycling store across them so constraint walks recycle across queries")
		resultCache  = flag.Int64("result-cache-bytes", 64<<20, "with multiple -template files, retain up to this many bytes of results to answer isomorphic templates without re-running (0 = disabled)")
		noSymmetry   = flag.Bool("no-symmetry", false, "disable automorphism symmetry breaking in the counting/enumeration kernels (ablation; results unchanged)")
		noGuards     = flag.Bool("no-guards", false, "disable failure-guard pruning in the verification kernels (ablation; results unchanged)")
		noRelabel    = flag.Bool("no-relabel", false, "keep input vertex ids as internal ids instead of relabeling by descending degree (ablation; output always uses input ids)")
	)
	flag.Parse()
	if *graphPath == "" || *templatePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	// Degree-ordered internal ids (cache locality for the kernels); every
	// output path translates back, so results print in input-file ids
	// either way.
	if !*noRelabel {
		g = graph.RelabelByDegree(g)
	}

	// Batch mode: -template a.txt,b.txt,... runs every template against the
	// one loaded graph, sharing the NLCC work-recycling store and reusing
	// results across isomorphic templates (the CLI shape of the server's
	// cross-query caching).
	if paths := strings.Split(*templatePath, ","); len(paths) > 1 {
		if *topdown || *flips || *ranks > 0 || *featuresOut != "" || *matchesOut != "" {
			log.Fatal("batch mode (multiple -template files) supports plain matching only; drop -topdown/-flips/-ranks/-features/-matches")
		}
		opts := approxmatch.DefaultOptions(*k)
		opts.CountMatches = *count
		opts.Workers = *workers
		opts.CompactBelow = *compactBelow
		opts.Budget = approxmatch.Budget{MaxWork: *maxWork, MaxBytes: *maxBytes}
		opts.CacheBytes = *cacheBytes
		opts.NoSymmetry = *noSymmetry
		opts.NoGuards = *noGuards
		fmt.Printf("graph: %v\n", graph.ComputeStats(g))
		runBatch(ctx, g, paths, opts, *count, *sharedNLCC, *cacheBytes, *resultCache, *timeout)
		return
	}

	t, err := loadTemplate(*templatePath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\n", graph.ComputeStats(g))
	fmt.Printf("template: %v\n", t)

	if *topdown {
		topts := approxmatch.DefaultOptions(*k)
		topts.Workers = *workers
		topts.CompactBelow = *compactBelow
		topts.NoSymmetry = *noSymmetry
		topts.NoGuards = *noGuards
		res, err := approxmatch.ExploreContext(ctx, g, t, topts)
		if err != nil {
			fatalQuery(err, *timeout)
		}
		if res.FoundDist < 0 {
			fmt.Printf("no matches within k=%d (%d prototypes searched)\n", *k, res.PrototypesSearched)
			return
		}
		fmt.Printf("first matches at edit distance %d; %d vertices participate\n",
			res.FoundDist, res.MatchingVertices.Count())
		return
	}

	opts := approxmatch.DefaultOptions(*k)
	opts.CountMatches = *count
	opts.Workers = *workers
	opts.CompactBelow = *compactBelow
	opts.Budget = approxmatch.Budget{MaxWork: *maxWork, MaxBytes: *maxBytes}
	opts.CacheBytes = *cacheBytes
	opts.NoSymmetry = *noSymmetry
	opts.NoGuards = *noGuards

	if *flips {
		res, err := approxmatch.MatchFlipsContext(ctx, g, t, opts)
		if err != nil {
			fatalQuery(err, *timeout)
		}
		fmt.Printf("base: %d vertices", res.Base.Verts.Count())
		if *count {
			fmt.Printf(", %d matches", res.Base.MatchCount)
		}
		fmt.Println()
		for fi, f := range res.Flips {
			fmt.Printf("  flip %-3d (-edge %d, +edge %d-%d): %8d vertices",
				fi, f.Removed, f.Added.I, f.Added.J, res.Solutions[fi].Verts.Count())
			if *count {
				fmt.Printf(", %d matches", res.Solutions[fi].MatchCount)
			}
			fmt.Println()
		}
		return
	}

	if *ranks > 0 {
		e := approxmatch.NewDistEngine(g, approxmatch.DistConfig{Ranks: *ranks})
		dopts := approxmatch.DistOptions{
			EditDistance:        *k,
			WorkRecycling:       true,
			FrequencyOrdering:   true,
			LabelPairRefinement: true,
			CountMatches:        *count,
			Rebalance:           true,
			Workers:             *workers,
			CompactBelow:        *compactBelow,
			Budget:              approxmatch.Budget{MaxWork: *maxWork, MaxBytes: *maxBytes},
		}
		res, err := approxmatch.MatchDistributedContext(ctx, e, t, dopts)
		if err != nil && (res == nil || !res.Partial) {
			fatalQuery(err, *timeout)
		}
		notePartial(res.Partial)
		fmt.Printf("prototypes: %d (classes), %d (edge subsets)\n", res.Set.Count(), res.Set.MaskCount())
		printPrototypes(res.Set, res.Solutions, res.Levels, *count)
		fmt.Printf("messages: %d total, %.1f%% remote\n",
			e.Stats.Total(), 100*float64(e.Stats.Remote())/float64(max64(e.Stats.Total(), 1)))
		return
	}

	res, err := approxmatch.MatchContext(ctx, g, t, opts)
	if err != nil && (res == nil || !res.Partial) {
		fatalQuery(err, *timeout)
	}
	notePartial(res.Partial)
	fmt.Printf("prototypes: %d (classes), %d (edge subsets)\n", res.Set.Count(), res.Set.MaskCount())
	printPrototypes(res.Set, res.Solutions, res.Levels, *count)
	fmt.Printf("work: %v\n", res.Metrics.String())
	fmt.Printf("phases: %s\n", res.Metrics.PhaseSummary())
	if *labels {
		// Iterate in external-id order so the listing is identical with and
		// without -no-relabel (MatchVector is internal-id-indexed).
		for e := 0; e < g.NumVertices(); e++ {
			mv := res.MatchVector(g.InternalID(graph.VertexID(e)))
			if len(mv) > 0 {
				fmt.Printf("v %d: %v\n", e, mv)
			}
		}
	}
	if res.Partial && (*featuresOut != "" || *matchesOut != "") {
		// Feature vectors and match enumerations are whole-run artifacts;
		// exporting unknown columns as zeros would fabricate non-matches.
		log.Fatal("refusing to export features/matches from a partial (budget-exhausted) result")
	}
	if *featuresOut != "" {
		f, err := os.Create(*featuresOut)
		if err != nil {
			log.Fatal(err)
		}
		opts := core.FeatureOptions{OnlyMatching: true, Rates: *rates}
		if err := res.WriteFeaturesCSV(f, opts); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("features written to %s\n", *featuresOut)
	}
	if *matchesOut != "" {
		f, err := os.Create(*matchesOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteMatchesTSV(f, 0, 0); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("matches written to %s\n", *matchesOut)
	}
}

// maxBatchCanonCost bounds the permutations template canonicalization may
// enumerate per batch entry (factorial in same-color cell sizes); costlier
// templates run under their own numbering and are never reused.
const maxBatchCanonCost = 1 << 16

// runBatch matches each template in turn. With sharing enabled, all runs
// recycle constraint-walk verdicts through one store, and a template
// isomorphic to an earlier one is answered from the retained result without
// running the pipeline — both are correctness-neutral: cache content only
// skips pruning work, and isomorphic templates provably share their
// prototype sets and solutions (the pipeline runs on the canonical form).
func runBatch(ctx context.Context, g *approxmatch.Graph, paths []string, opts approxmatch.Options, count, sharedNLCC bool, cacheBytes, resultCacheBytes int64, timeout time.Duration) {
	if sharedNLCC {
		opts.SharedCache = approxmatch.NewSharedCache(g, cacheBytes)
	}
	type cached struct {
		res *approxmatch.Result
		src int
	}
	seen := make(map[string]cached)
	var retained int64
	for i, path := range paths {
		t, err := loadTemplate(path)
		if err != nil {
			log.Fatal(err)
		}
		run := t
		var key string
		cacheable := resultCacheBytes > 0 && pattern.CanonicalCost(t) <= maxBatchCanonCost
		if cacheable {
			run, _ = pattern.CanonicalForm(t)
			key = fmt.Sprintf("k%d|c%t|%s", opts.EditDistance, count, pattern.CanonicalKey(run))
			if c, ok := seen[key]; ok {
				fmt.Printf("template %d (%s): isomorphic to template %d, result reused\n", i, path, c.src)
				printPrototypes(c.res.Set, c.res.Solutions, c.res.Levels, count)
				continue
			}
		}
		res, err := approxmatch.MatchContext(ctx, g, run, opts)
		if err != nil && (res == nil || !res.Partial) {
			fatalQuery(err, timeout)
		}
		notePartial(res.Partial)
		fmt.Printf("template %d (%s): %v\n", i, path, t)
		printPrototypes(res.Set, res.Solutions, res.Levels, count)
		// Retain completed results for reuse while they fit the byte budget;
		// partial results reflect this run's budget, not the graph.
		if cacheable && !res.Partial {
			if fp := resultFootprint(res); retained+fp <= resultCacheBytes {
				seen[key] = cached{res, i}
				retained += fp
			}
		}
	}
	if opts.SharedCache != nil {
		fmt.Printf("shared nlcc store: %d sets resident, %d hits, %d evictions\n",
			opts.SharedCache.Sets(), opts.SharedCache.Hits(), opts.SharedCache.Evictions())
	}
}

// resultFootprint estimates the bytes a retained result keeps resident (the
// per-prototype solution bitsets dominate).
func resultFootprint(res *approxmatch.Result) int64 {
	var sum int64
	for _, sol := range res.Solutions {
		if sol == nil {
			continue
		}
		if sol.Verts != nil {
			sum += sol.Verts.Bytes()
		}
		if sol.Edges != nil {
			sum += sol.Edges.Bytes()
		}
	}
	return sum
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

func loadTemplate(path string) (*pattern.Template, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pattern.Parse(f)
}

// fatalQuery reports a failed or aborted search with a cancellation-aware
// message.
func fatalQuery(err error, timeout time.Duration) {
	switch {
	case errors.Is(err, approxmatch.ErrBudgetExhausted):
		log.Fatalf("search aborted: %v (raise -max-work / -max-bytes)", err)
	case errors.Is(err, context.DeadlineExceeded):
		log.Fatalf("search aborted: exceeded -timeout %v", timeout)
	case errors.Is(err, context.Canceled):
		log.Fatal("search aborted: interrupted")
	default:
		log.Fatal(err)
	}
}

// notePartial prints the anytime-partial banner when a budget ran out
// mid-pipeline.
func notePartial(partial bool) {
	if partial {
		fmt.Println("NOTE: budget exhausted — partial result; completed levels keep the full precision/recall guarantee, the rest are unknown")
	}
}

// printPrototypes lists per-prototype results; on a partial run the
// prototypes of unfinished levels print as unknown instead of empty.
func printPrototypes(set *approxmatch.PrototypeSet, sols []*approxmatch.Solution, levels []core.LevelStats, count bool) {
	exact := make(map[int]bool, len(levels))
	for _, lv := range levels {
		exact[lv.Dist] = lv.Complete
	}
	for pi, p := range set.Protos {
		if !exact[p.Dist] || sols[pi] == nil {
			fmt.Printf("  δ=%d proto %-4d:  unknown (budget exhausted)\n", p.Dist, pi)
			continue
		}
		fmt.Printf("  δ=%d proto %-4d: %8d vertices", p.Dist, pi, sols[pi].Verts.Count())
		if count {
			fmt.Printf(", %d matches", sols[pi].MatchCount)
		}
		fmt.Println()
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
