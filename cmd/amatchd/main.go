// Command amatchd serves approximate pattern-matching queries over HTTP:
// it loads a background graph once and answers /match, /explore and /stats
// requests (see internal/server) — the long-lived bulk-labeling deployment
// shape of usage scenario S4.
//
// Usage:
//
//	amatchd -graph g.txt -addr :8080
//
// Example query:
//
//	curl -s localhost:8080/match -d '{"template":"v 0 1\nv 1 2\ne 0 1","k":1,"count":true}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"approxmatch/internal/graph"
	"approxmatch/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("amatchd: ")
	var (
		graphPath = flag.String("graph", "", "background graph edge-list file (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		maxK      = flag.Int("maxk", 6, "largest accepted edit distance")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %v\n", graph.ComputeStats(g))

	s := server.New(g)
	s.MaxEditDistance = *maxK
	fmt.Printf("serving on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
