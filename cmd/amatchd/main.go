// Command amatchd serves approximate pattern-matching queries over HTTP:
// it loads a background graph once and answers /match, /explore, /stats,
// /metrics and /healthz requests (see internal/server) — the long-lived
// bulk-labeling deployment shape of usage scenario S4. With -ingest it also
// accepts live mutation batches on POST /ingest.
//
// Queries run under a bounded concurrent scheduler: -concurrency in-flight
// pipeline runs, a small admission queue, 503 + Retry-After beyond that,
// and a per-query -querytimeout enforced through context cancellation (a
// disconnected client also stops its query). The process shuts down
// gracefully on SIGINT/SIGTERM, draining in-flight requests.
//
// Usage:
//
//	amatchd -graph g.txt -addr :8080 [-concurrency N] [-queue N]
//	        [-querytimeout 30s] [-maxbody 1048576] [-maxk 6]
//	        [-compact-below 0.5]
//	        [-max-work N] [-max-bytes N] [-cache-bytes N]
//	        [-result-cache-bytes N] [-shared-nlcc=false]
//	        [-partial-grace 5s] [-mem-watermark N]
//	        [-ingest] [-ingest-maxbody 16777216]
//	        [-wal-dir DIR] [-wal-sync always|interval|none]
//	        [-wal-checkpoint-every N] [-wal-segment-bytes N]
//	        [-no-symmetry] [-no-guards] [-no-relabel]
//	        [-chaos-seed S -chaos-drop 0.1 -chaos-dup 0.1
//	         -chaos-crash 100 -chaos-ranks 4]
//	        [-ranks-addr host:p1,host:p2 -ranks-timeout 5s
//	         -ranks-dial-timeout 30s]
//
// The listener binds before recovery begins and -addr may be ":0"; the
// bound address is printed in the "serving" log line ("addr" field), which
// is what the smoke scripts parse instead of hardcoding ports. Until
// recovery completes every route — /healthz and /match included — answers
// 503 with Retry-After.
//
// -wal-dir enables durable ingest: every accepted /ingest batch is
// appended to a segmented, CRC32C-checksummed write-ahead delta log and
// (under -wal-sync always, the default) fsynced before its epoch is
// published, so an acknowledged batch survives crash or kill -9. Periodic
// CSR checkpoints (-wal-checkpoint-every batches) bound restart replay to
// the tail since the last checkpoint. On startup the directory is
// recovered: checkpoint (or the seed graph), then tail replay with
// torn-tail truncation; mid-log corruption refuses to start rather than
// serve a wrong graph.
//
// -ingest registers POST /ingest: a JSON batch of edge inserts/deletes and
// vertex relabels is applied as one atomic epoch swap — in-flight queries
// keep reading the snapshot they pinned, new queries see the new epoch, and
// both cross-query caches are invalidated. Off by default: the endpoint is
// unauthenticated, so exposing it is a deliberate deployment decision (it is
// both a data-integrity and a cache-flush denial-of-service lever).
// -ingest-maxbody caps the batch body separately from -maxbody.
//
// The resource-governance flags bound each query: -max-work / -max-bytes
// cap pipeline work and auxiliary allocation (exhausted /match queries
// return an HTTP 200 partial result whose completed levels stay exact),
// -cache-bytes bounds the per-query work-recycling cache, -partial-grace
// controls the slow-query watchdog that downgrades over-deadline queries to
// partial-result mode before killing them, and -mem-watermark sheds new
// queries while the live heap is above the given size.
//
// The cross-query caching flags default on: -result-cache-bytes caches
// completed /match responses under the template's canonical key — any
// isomorphic resubmission is answered verbatim without running the
// pipeline, and concurrent identical queries coalesce into one run —
// while -shared-nlcc promotes the NLCC work-recycling cache to one store
// shared across queries. Both are correctness-neutral: exact verification
// never depended on either cache.
//
// The -chaos-* flags opt the server into fault-injected serving: queries
// run on the simulated distributed engine (internal/dist) with seeded
// message drops/duplications and rank crashes, exercising the
// at-least-once delivery and checkpoint/recovery machinery while serving
// bit-identical results; fault counters surface on /metrics.
//
// -ranks-addr turns the server into a thin coordinator over a group of
// amatchrank worker processes: /match and /explore requests are validated
// locally, then routed over TCP (round-robin with failover) to a worker
// whose graph signature matches this server's graph, and the worker's
// response body is relayed verbatim — byte-identical to what the
// in-process engine would have served. All other endpoints stay local.
// -ranks-timeout bounds each dial and routed exchange (0 = -querytimeout,
// or 5s when that is unset).
//
// Example queries:
//
//	curl -s localhost:8080/match -d '{"template":"v 0 1\nv 1 2\ne 0 1","k":1,"count":true}'
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"approxmatch/internal/dist"
	"approxmatch/internal/graph"
	"approxmatch/internal/server"
	"approxmatch/internal/wal"
)

func main() {
	var (
		graphPath    = flag.String("graph", "", "background graph edge-list file (required)")
		addr         = flag.String("addr", ":8080", "listen address")
		maxK         = flag.Int("maxk", 6, "largest accepted edit distance")
		concurrency  = flag.Int("concurrency", 0, "max in-flight queries (0 = GOMAXPROCS-aware default)")
		queueDepth   = flag.Int("queue", 0, "admission queue depth beyond in-flight (0 = 2×concurrency, -1 = none)")
		queryTimeout = flag.Duration("querytimeout", 30*time.Second, "per-query pipeline timeout (0 = none)")
		maxBody      = flag.Int64("maxbody", 1<<20, "max request body bytes")
		workers      = flag.Int("workers", 0, "per-query kernel workers (0 = scheduler-aware default, -1 = sequential)")
		compactBelow = flag.Float64("compact-below", 0.5, "compact the search state into a dense graph view when its active fraction drops below this threshold (0 disables)")
		chaosSeed    = flag.Int64("chaos-seed", -1, "fault-schedule seed; >= 0 enables chaos mode (queries run on the fault-injected distributed engine)")
		chaosDrop    = flag.Float64("chaos-drop", 0, "per-transmission drop probability in chaos mode")
		chaosDup     = flag.Float64("chaos-dup", 0, "per-transmission duplication probability in chaos mode")
		chaosCrash   = flag.Int("chaos-crash", 0, "crash rank 0 after this many deliveries per traversal in chaos mode (0 = no crashes)")
		chaosRanks   = flag.Int("chaos-ranks", 4, "simulated distributed ranks in chaos mode")
		maxWork      = flag.Int64("max-work", 0, "per-query pipeline work-unit budget; exhausted /match queries return an exact partial result (0 = no limit)")
		maxBytes     = flag.Int64("max-bytes", 0, "per-query auxiliary allocation budget in bytes (0 = no limit)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "work-recycling cache cap in bytes, LRU-evicted beyond it (0 = unbounded); caps the shared store with -shared-nlcc, per-query caches otherwise")
		resultCache  = flag.Int64("result-cache-bytes", 64<<20, "cross-query result cache cap in bytes: completed /match responses are cached under the template's canonical key and served verbatim to isomorphic queries (0 = disabled)")
		sharedNLCC   = flag.Bool("shared-nlcc", true, "share one NLCC work-recycling store across queries so constraint walks recycle across the query boundary")
		partialGrace = flag.Duration("partial-grace", 0, "slow-query watchdog window: queries crossing -querytimeout get this long to wind down into a partial result before a hard kill (0 = querytimeout/4, min 1s; negative disables the downgrade)")
		memWatermark = flag.Uint64("mem-watermark", 0, "shed new queries with 503 while the live Go heap exceeds this many bytes (0 = disabled)")
		ingest       = flag.Bool("ingest", false, "enable POST /ingest live mutation batches (unauthenticated graph writes — only expose on trusted networks)")
		ingestBody   = flag.Int64("ingest-maxbody", 16<<20, "max /ingest request body bytes")
		noSymmetry   = flag.Bool("no-symmetry", false, "disable automorphism symmetry breaking in the counting/enumeration kernels (ablation; results unchanged)")
		noGuards     = flag.Bool("no-guards", false, "disable failure-guard pruning in the verification kernels (ablation; results unchanged)")
		noRelabel    = flag.Bool("no-relabel", false, "keep input vertex ids as internal ids instead of relabeling by descending degree (ablation; the API always speaks input ids)")
		ranksAddr    = flag.String("ranks-addr", "", "comma-separated amatchrank worker addresses; when set, /match and /explore are routed to the rank group (empty = in-process engine)")
		ranksTimeout = flag.Duration("ranks-timeout", 0, "per-exchange coordinator timeout for dials and routed queries (0 = querytimeout, or 5s when that is unset)")
		ranksDial    = flag.Duration("ranks-dial-timeout", 30*time.Second, "total budget for dialing the rank group: failed dials retry with capped exponential backoff until it elapses (0 = one attempt per worker)")
		walDir       = flag.String("wal-dir", "", "write-ahead log directory for durable ingest; recovered on startup (empty = ingest is volatile)")
		walSync      = flag.String("wal-sync", "always", "WAL append sync policy: always (fsync per batch), interval (background fsync), none")
		walSyncEvery = flag.Duration("wal-sync-interval", 100*time.Millisecond, "background fsync period under -wal-sync interval")
		walCkptEvery = flag.Int("wal-checkpoint-every", 256, "write a CSR checkpoint after this many logged batches, bounding restart replay to the tail (0 = never)")
		walSegBytes  = flag.Int64("wal-segment-bytes", 64<<20, "rotate WAL segments at this size")
	)
	flag.Parse()
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(logger, "open graph", err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fatal(logger, "read graph", err)
	}
	// Degree-ordered internal ids for kernel cache locality. The HTTP API is
	// unaffected: /match vectors and /ingest batches are translated at the
	// boundary, so clients always speak the input file's ids.
	if !*noRelabel {
		g = graph.RelabelByDegree(g)
	}

	// server.Config treats 0 as "pipeline default" and negative as "off",
	// so a -compact-below 0 on the command line maps to the off sentinel.
	cb := *compactBelow
	if cb <= 0 {
		cb = -1
	}
	// -chaos-seed >= 0 opts the server into fault-injected serving: queries
	// run on the distributed engine with this fault plane, and the chaos
	// differential suite's guarantee is that results stay bit-identical.
	var chaos *dist.Faults
	if *chaosSeed >= 0 {
		chaos = &dist.Faults{
			Seed:      *chaosSeed,
			Drop:      *chaosDrop,
			Duplicate: *chaosDup,
		}
		if *chaosCrash > 0 {
			chaos.Crash = &dist.CrashEvent{Rank: 0, After: *chaosCrash}
		}
	}
	// Bind the listener and start serving behind a ready gate before
	// recovery and rank dialing begin: probes and smoke scripts see a live
	// port (503 + Retry-After on every route) instead of connection
	// refused, and -addr ":0" works — the bound address is in the
	// "serving" log line.
	gate := server.NewReadyGate()
	// WriteTimeout must outlast the slowest legitimate query plus response
	// streaming; with no query timeout it stays unbounded (the scheduler
	// still sheds load and client disconnects still cancel queries).
	var writeTimeout time.Duration
	if *queryTimeout > 0 {
		writeTimeout = *queryTimeout + time.Minute
	}
	hs := &http.Server{
		Handler:           gate,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String())

	// -wal-dir recovers the durable state before anything is published:
	// checkpoint (or the seed graph just loaded), then tail replay.
	var wlog *wal.Log
	startEpoch := uint64(0)
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fatal(logger, "parse -wal-sync", err)
		}
		var rec *wal.Recovery
		wlog, rec, err = wal.Open(wal.Options{
			Dir:             *walDir,
			Sync:            policy,
			SyncEvery:       *walSyncEvery,
			SegmentBytes:    *walSegBytes,
			CheckpointEvery: *walCkptEvery,
		}, g)
		if err != nil {
			fatal(logger, "recover wal", err)
		}
		g = rec.Graph
		startEpoch = rec.Epoch
		logger.Info("wal recovered",
			"dir", *walDir, "epoch", rec.Epoch,
			"from_checkpoint", rec.FromCheckpoint, "checkpoint_epoch", rec.CheckpointEpoch,
			"replayed", rec.Replayed, "torn_tail", rec.TornTail,
			"elapsed_ms", rec.Elapsed.Milliseconds())
	}

	// -ranks-addr opts into coordinator mode: queries route to a group of
	// amatchrank workers, validated at dial time to serve exactly this
	// graph (structural signature over the relabeled, recovered form). The
	// local graph still backs /stats, /healthz and the fallback-free
	// contract that workers and coordinator agree on ids. Failed dials
	// retry with backoff for up to -ranks-dial-timeout, so workers started
	// in parallel with the server do not have to win the race.
	var coord *dist.Coordinator
	if *ranksAddr != "" {
		to := *ranksTimeout
		if to <= 0 {
			to = *queryTimeout
		}
		coord, err = dist.DialGroupWithin(splitAddrs(*ranksAddr), dist.GraphSignature(g), to, *ranksDial)
		if err != nil {
			fatal(logger, "dial rank group", err)
		}
		defer coord.Close()
		logger.Info("rank group dialed", "workers", coord.Size(), "addrs", *ranksAddr)
	}
	s := server.NewWithConfig(g, server.Config{
		MaxConcurrent:      *concurrency,
		QueueDepth:         *queueDepth,
		QueryTimeout:       *queryTimeout,
		MaxBodyBytes:       *maxBody,
		Workers:            *workers,
		CompactBelow:       cb,
		Chaos:              chaos,
		ChaosRanks:         *chaosRanks,
		MaxWork:            *maxWork,
		MaxBytes:           *maxBytes,
		CacheBytes:         *cacheBytes,
		ResultCacheBytes:   *resultCache,
		SharedNLCC:         *sharedNLCC,
		PartialGrace:       *partialGrace,
		MemHighWatermark:   *memWatermark,
		EnableIngest:       *ingest,
		IngestMaxBodyBytes: *ingestBody,
		NoSymmetry:         *noSymmetry,
		NoGuards:           *noGuards,
		Logger:             logger,
		Coordinator:        coord,
		WAL:                wlog,
		StartEpoch:         startEpoch,
	})
	s.MaxEditDistance = *maxK
	gate.Ready(s.Handler())
	st := graph.ComputeStats(g)
	logger.Info("graph loaded",
		"vertices", st.NumVertices, "edges", st.NumEdges, "labels", st.NumLabels,
		"epoch", startEpoch)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-errc:
		fatal(logger, "listen", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down, draining in-flight requests")
	drain := 10 * time.Second
	if *queryTimeout > 0 {
		drain = *queryTimeout + 5*time.Second
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		logger.Warn("forced shutdown", "err", err)
		hs.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(logger, "serve", err)
	}
	if wlog != nil {
		// Final sync after the drain: every acknowledged batch is already
		// durable per the sync policy; this just tidies interval/none mode
		// on a clean shutdown.
		if err := wlog.Close(); err != nil {
			logger.Warn("wal close", "err", err)
		}
	}
	logger.Info("stopped")
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

// splitAddrs parses the -ranks-addr comma list, dropping empty entries.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
