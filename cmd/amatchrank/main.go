// Command amatchrank is a rank worker process: it loads the background
// graph, listens on a TCP socket, and serves /match and /explore queries
// routed to it by an amatchd coordinator (amatchd -ranks-addr). A rank
// group of N amatchrank processes plus one coordinator is the
// multi-process deployment shape — each worker runs the full serving
// stack (scheduler, result cache, shared NLCC store, budgets), so a
// routed query takes exactly the code path a direct HTTP request would
// and produces byte-identical response bodies.
//
// On connect the worker greets the coordinator with its wire version and
// a structural graph signature; the coordinator refuses a group whose
// workers disagree (or disagree with its own graph), so a worker serving
// a different file or relabeling can never silently answer queries
// against the wrong data. Every worker must therefore load the same
// graph with the same -no-relabel setting as the coordinator.
//
// Usage:
//
//	amatchrank -graph g.txt -listen 127.0.0.1:9091
//	           [-querytimeout 30s] [-maxk 6] [-workers N]
//	           [-compact-below 0.5] [-max-work N] [-max-bytes N]
//	           [-cache-bytes N] [-result-cache-bytes N]
//	           [-shared-nlcc=false] [-no-symmetry] [-no-guards]
//	           [-no-relabel]
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// routed queries.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"approxmatch/internal/dist"
	"approxmatch/internal/graph"
	"approxmatch/internal/server"
)

func main() {
	var (
		graphPath    = flag.String("graph", "", "background graph edge-list file (required)")
		listen       = flag.String("listen", "127.0.0.1:9091", "rank worker listen address")
		maxK         = flag.Int("maxk", 6, "largest accepted edit distance")
		queryTimeout = flag.Duration("querytimeout", 30*time.Second, "per-query pipeline timeout (0 = none)")
		workers      = flag.Int("workers", 0, "per-query kernel workers (0 = scheduler-aware default, -1 = sequential)")
		compactBelow = flag.Float64("compact-below", 0.5, "compact the search state below this active fraction (0 disables)")
		maxWork      = flag.Int64("max-work", 0, "per-query pipeline work-unit budget (0 = no limit)")
		maxBytes     = flag.Int64("max-bytes", 0, "per-query auxiliary allocation budget in bytes (0 = no limit)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "work-recycling cache cap in bytes (0 = unbounded)")
		resultCache  = flag.Int64("result-cache-bytes", 64<<20, "cross-query result cache cap in bytes (0 = disabled)")
		sharedNLCC   = flag.Bool("shared-nlcc", true, "share one NLCC work-recycling store across queries")
		noSymmetry   = flag.Bool("no-symmetry", false, "disable automorphism symmetry breaking (ablation)")
		noGuards     = flag.Bool("no-guards", false, "disable failure-guard pruning (ablation)")
		noRelabel    = flag.Bool("no-relabel", false, "keep input vertex ids as internal ids (must match the coordinator's setting)")
	)
	flag.Parse()
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(logger, "open graph", err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fatal(logger, "read graph", err)
	}
	// Same load path as amatchd: the graph signature covers the relabeled
	// structure, so coordinator and workers must agree on -no-relabel.
	if !*noRelabel {
		g = graph.RelabelByDegree(g)
	}
	cb := *compactBelow
	if cb <= 0 {
		cb = -1
	}
	s := server.NewWithConfig(g, server.Config{
		QueryTimeout:     *queryTimeout,
		Workers:          *workers,
		CompactBelow:     cb,
		MaxWork:          *maxWork,
		MaxBytes:         *maxBytes,
		CacheBytes:       *cacheBytes,
		ResultCacheBytes: *resultCache,
		SharedNLCC:       *sharedNLCC,
		NoSymmetry:       *noSymmetry,
		NoGuards:         *noGuards,
		Logger:           logger,
	})
	s.MaxEditDistance = *maxK

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(logger, "listen", err)
	}
	hello := dist.HelloInfo{
		Vertices:  g.NumVertices(),
		Edges:     g.NumDirectedEdges(),
		Signature: dist.GraphSignature(g),
	}
	rs := dist.NewRankServer(ln, hello, s.RankHandler())
	logger.Info("rank worker serving",
		"addr", rs.Addr(), "vertices", hello.Vertices, "edges", hello.Edges,
		"signature", hello.Signature)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- rs.Serve() }()

	select {
	case err := <-errc:
		if err != nil {
			fatal(logger, "serve", err)
		}
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down")
	rs.Close()
	logger.Info("stopped")
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}
