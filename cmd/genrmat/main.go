// Command genrmat generates Graph500-parameter R-MAT graphs with
// degree-derived vertex labels (the paper's weak-scaling workload) in the
// edge-list format amatch consumes.
//
// Usage:
//
//	genrmat -scale 16 -seed 1 -out rmat16.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"approxmatch/internal/graph"
	"approxmatch/internal/rmat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genrmat: ")
	var (
		scale = flag.Int("scale", 14, "2^scale vertices")
		ef    = flag.Int("edgefactor", 16, "directed edges per vertex")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	p := rmat.Graph500(*scale, *seed)
	p.EdgeFactor = *ef
	g := rmat.Generate(p)
	fmt.Fprintf(os.Stderr, "generated: %v\n", graph.ComputeStats(g))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		log.Fatal(err)
	}
}
