// Command kernelbench times the core constraint-checking kernels on a
// seeded R-MAT benchmark graph, sequential versus parallel (Config.Workers),
// plus the end-to-end δ=k…0 pipeline with search-space compaction on and
// off, the resource-governance overhead (ungoverned vs an always-charging
// budget tracker vs a byte-capped work-recycling cache forced to evict),
// the distributed engine's fault-tolerance overhead (perfect
// transport vs the sequence/ack/dedup path vs an injected fault schedule),
// the real-socket rank transport's overhead (in-memory FT mailboxes vs
// cross-rank envelopes framed over loopback TCP, clean and under injected
// socket faults, match counts cross-checked),
// the serving layer's cross-query caching (a cold query vs a warm
// isomorphic resubmission served from the result cache, plus a rerun that
// recycles walks through the shared NLCC store), and the live-ingest
// incremental maintenance path (a small delta re-matched via the
// locality-bounded restricted runs vs a full recompute, match counts and Rho
// cross-checked), and the kernel redundancy eliminations (symmetric-template
// counting with automorphism symmetry breaking and failure guards off vs on,
// expansion counters and match counts cross-checked), and the durable-ingest
// WAL (per-batch append cost under each sync policy, tail-replay vs
// checkpoint-bounded recovery time, the recovered graph cross-checked
// signature-identical to the live one), and writes a machine-readable
// report (BENCH_PR10.json by default).
//
// The report states the machine honestly: "cpus" and "gomaxprocs" record
// what the kernels actually had to work with, so a speedup near 1.0 on a
// single-core runner is expected and distinguishable from a regression.
// The compaction section records the per-level active-fraction trajectory,
// so a compaction speedup near 1.0 on a dense-active run (fractions near 1,
// no level below the threshold) is likewise expected. The governance and
// chaos sections cross-check that every mode counts identical matches —
// governance and fault tolerance trade time, never correctness — before
// reporting overhead.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	mrand "math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/dist"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/rmat"
	"approxmatch/internal/server"
	"approxmatch/internal/wal"
)

type phaseReport struct {
	Name         string  `json:"name"`
	SequentialMS float64 `json:"sequential_ms"`
	ParallelMS   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
}

type levelReport struct {
	Dist           int     `json:"dist"`
	Prototypes     int     `json:"prototypes"`
	ActiveFraction float64 `json:"active_fraction"`
	Compacted      bool    `json:"compacted"`
}

type compactionReport struct {
	Threshold      float64       `json:"threshold"`
	OffMS          float64       `json:"off_ms"`
	OnMS           float64       `json:"on_ms"`
	Speedup        float64       `json:"speedup"`
	Compactions    int64         `json:"compactions"`
	BytesReclaimed int64         `json:"bytes_reclaimed"`
	MatchCount     int64         `json:"match_count"`
	Levels         []levelReport `json:"levels"`
}

// chaosReport compares the distributed engine's transports on the same
// query: the perfect in-memory transport (Faults nil), the fault-tolerant
// path with no injected faults (all-zero Faults — pure sequence/ack/dedup
// overhead), and a seeded drop+duplicate schedule (recovery cost). All
// three must count identical matches.
type chaosReport struct {
	Ranks         int     `json:"ranks"`
	PerfectMS     float64 `json:"perfect_ms"`
	FTMS          float64 `json:"ft_ms"`
	FTOverheadPct float64 `json:"ft_overhead_pct"`
	FaultedMS     float64 `json:"faulted_ms"`
	DropProb      float64 `json:"drop_prob"`
	DupProb       float64 `json:"dup_prob"`
	Dropped       int64   `json:"dropped"`
	Duplicated    int64   `json:"duplicated"`
	Retries       int64   `json:"retries"`
	Redeliveries  int64   `json:"redeliveries"`
	AcksSent      int64   `json:"acks_sent"`
	MatchCount    int64   `json:"match_count"`
}

// tcpReport compares the fault-tolerant pipeline with in-memory mailboxes
// against the same pipeline with every cross-rank envelope crossing a real
// loopback TCP socket through the wire codec, clean and under an injected
// socket-fault schedule. Match counts are cross-checked across all three
// modes before any time is reported; the socket counters come from the
// faulted run and pin that frames really crossed the kernel's TCP stack
// and that every fault class fired.
type tcpReport struct {
	Ranks            int     `json:"ranks"`
	InMemoryFTMS     float64 `json:"in_memory_ft_ms"`
	TCPCleanMS       float64 `json:"tcp_clean_ms"`
	TCPOverheadPct   float64 `json:"tcp_overhead_pct"`
	TCPFaultedMS     float64 `json:"tcp_faulted_ms"`
	ConnDropProb     float64 `json:"conn_drop_prob"`
	PartialWriteProb float64 `json:"partial_write_prob"`
	SockFrames       int64   `json:"sock_frames"`
	SockBytes        int64   `json:"sock_bytes"`
	SockDials        int64   `json:"sock_dials"`
	SockConnDrops    int64   `json:"sock_conn_drops"`
	SockPartialWr    int64   `json:"sock_partial_writes"`
	SockDelays       int64   `json:"sock_delays"`
	Retries          int64   `json:"retries"`
	MatchCount       int64   `json:"match_count"`
}

// governanceReport compares the same query ungoverned, under an
// active-but-generous budget tracker (every amortized probe charges the
// shared atomics but no cap ever fires — the pure cost of resource
// governance), and with the work-recycling cache byte-capped small enough to
// force LRU evictions (the recomputation cost of bounded memory). All three
// runs must count identical matches: governance trades time, never
// correctness.
type governanceReport struct {
	UngovernedMS   float64 `json:"ungoverned_ms"`
	GovernedMS     float64 `json:"governed_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	WorkCharged    int64   `json:"work_charged"`
	BytesCharged   int64   `json:"bytes_charged"`
	CacheCapBytes  int64   `json:"cache_cap_bytes"`
	CacheCappedMS  float64 `json:"cache_capped_ms"`
	CacheHits      int64   `json:"cache_hits"`
	CacheEvictions int64   `json:"cache_evictions"`
	MatchCount     int64   `json:"match_count"`
}

// cachingReport compares the serving path cold versus warm: the first
// /match on a fresh graph epoch runs the pipeline; an isomorphic
// resubmission must be served verbatim from the cross-query result cache
// (byte-identical body — checked — so its match counts trivially agree),
// and a rerun that misses the result cache but shares the NLCC store
// measures cross-query work recycling alone.
type cachingReport struct {
	ColdMS          float64 `json:"cold_ms"`
	WarmMS          float64 `json:"warm_ms"`
	Speedup         float64 `json:"speedup"`
	SharedRerunMS   float64 `json:"shared_nlcc_rerun_ms"`
	SharedNLCCHits  int64   `json:"shared_nlcc_hits"`
	ResultCacheHits int64   `json:"result_cache_hits"`
	MatchCount      int64   `json:"match_count"`
}

// redundancyCase compares one symmetric template with the kernel redundancy
// eliminations off (NoSymmetry + NoGuards — every match rediscovered
// |Aut(T)| times, exhausted verification subtrees re-explored) versus the
// default optimized kernels. Match counts are cross-checked before any time
// is reported — the eliminations trade work, never results — and
// expansion_reduction records the measured enumeration-expansion ratio,
// which approaches aut_order on clique templates.
type redundancyCase struct {
	Template            string  `json:"template"`
	AutOrder            int     `json:"aut_order"`
	BaselineMS          float64 `json:"baseline_ms"`
	OptimizedMS         float64 `json:"optimized_ms"`
	Speedup             float64 `json:"speedup"`
	BaselineExpansions  int64   `json:"baseline_expansions"`
	OptimizedExpansions int64   `json:"optimized_expansions"`
	ExpansionReduction  float64 `json:"expansion_reduction"`
	GuardsSet           int64   `json:"guards_set"`
	GuardHits           int64   `json:"guard_hits"`
	MatchCount          int64   `json:"match_count"`
	MatchesAgree        bool    `json:"matches_agree"`
}

// incrementalReport compares maintaining a query's result across a small
// mutation batch (core.RunIncremental: two pipeline runs restricted to the
// dirty region) against recomputing from scratch on the mutated graph. The
// incremental result is cross-checked bit-identical (Rho and per-prototype
// match counts) before any time is reported; region_vertices records how
// much of the graph the restricted runs touched, which is exactly where the
// speedup comes from.
type incrementalReport struct {
	DeltaInserts     int     `json:"delta_inserts"`
	DeltaDeletes     int     `json:"delta_deletes"`
	DeltaRelabels    int     `json:"delta_relabels"`
	Radius           int     `json:"radius"`
	ChangedVertices  int     `json:"changed_vertices"`
	AffectedVertices int     `json:"affected_vertices"`
	RegionVertices   int     `json:"region_vertices"`
	GraphVertices    int     `json:"graph_vertices"`
	FullMS           float64 `json:"full_ms"`
	IncrementalMS    float64 `json:"incremental_ms"`
	Speedup          float64 `json:"speedup"`
	MatchCount       int64   `json:"match_count"`
	MatchesAgree     bool    `json:"matches_agree"`
}

type report struct {
	Scale       int               `json:"scale"`
	EdgeFactor  int               `json:"edge_factor"`
	Seed        int64             `json:"seed"`
	Vertices    int               `json:"vertices"`
	Edges       int               `json:"edges"`
	K           int               `json:"k"`
	Reps        int               `json:"reps"`
	Workers     int               `json:"workers"`
	CPUs        int               `json:"cpus"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Phases      []phaseReport     `json:"phases"`
	Compaction  compactionReport  `json:"compaction"`
	Governance  governanceReport  `json:"governance"`
	Chaos       chaosReport       `json:"chaos"`
	TCP         tcpReport         `json:"tcp"`
	Caching     cachingReport     `json:"caching"`
	Incremental incrementalReport `json:"incremental"`
	Redundancy  []redundancyCase  `json:"redundancy"`
	Durability  durabilityReport  `json:"durability"`
}

// durabilityReport measures what the WAL costs and what recovery buys: the
// same precomputed batch sequence is appended under each sync policy
// (isolating the log's append+fsync cost from delta application), then the
// log is recovered twice — once replaying the whole tail, once bounded by a
// checkpoint. Before any recovery time is reported the recovered graph is
// cross-checked signature-identical (dist.GraphSignature) to the live graph
// the appends built — durability trades time, never state.
type durabilityReport struct {
	Batches              int     `json:"batches"`
	WALBytes             int64   `json:"wal_bytes"`
	AppendAlwaysMS       float64 `json:"append_always_ms"`
	AppendIntervalMS     float64 `json:"append_interval_ms"`
	AppendNoneMS         float64 `json:"append_none_ms"`
	ReplayRecoveryMS     float64 `json:"replay_recovery_ms"`
	ReplayRecords        int     `json:"replay_records"`
	CheckpointWriteMS    float64 `json:"checkpoint_write_ms"`
	CheckpointRecoveryMS float64 `json:"checkpoint_recovery_ms"`
	CheckpointReplayed   int     `json:"checkpoint_replayed"`
	SignatureAgree       bool    `json:"signature_agree"`
}

func main() {
	scale := flag.Int("scale", 13, "R-MAT scale (2^scale vertices)")
	edgefactor := flag.Int("edgefactor", 8, "R-MAT edges per vertex")
	seed := flag.Int64("seed", 42, "R-MAT seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel worker count to compare against sequential")
	reps := flag.Int("reps", 3, "repetitions per measurement (best time kept)")
	k := flag.Int("k", 1, "edit distance for the pipeline phase")
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	compactBelow := flag.Float64("compact-below", 0.5, "compaction threshold for the compaction on/off comparison")
	chaosRanks := flag.Int("chaos-ranks", 4, "distributed ranks for the fault-tolerance overhead comparison")
	flag.Parse()

	p := rmat.Graph500(*scale, *seed)
	p.EdgeFactor = *edgefactor
	g := rmat.Generate(p)
	tp := benchTemplate(g)
	fmt.Printf("graph: scale=%d |V|=%d |E|=%d  template: %v  workers: %d (cpus=%d)\n",
		*scale, g.NumVertices(), g.NumEdges(), tp, *workers, runtime.NumCPU())

	rep := report{
		Scale: *scale, EdgeFactor: *edgefactor, Seed: *seed,
		Vertices: g.NumVertices(), Edges: g.NumEdges(),
		K: *k, Reps: *reps, Workers: *workers,
		CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	measure := func(name string, run func(workers int)) {
		seq := best(*reps, func() { run(0) })
		par := best(*reps, func() { run(*workers) })
		ph := phaseReport{
			Name:         name,
			SequentialMS: ms(seq),
			ParallelMS:   ms(par),
			Speedup:      seq.Seconds() / par.Seconds(),
		}
		rep.Phases = append(rep.Phases, ph)
		fmt.Printf("%-16s seq %8.1fms  par %8.1fms  speedup %.2fx\n",
			ph.Name, ph.SequentialMS, ph.ParallelMS, ph.Speedup)
	}

	measure("candidate-set", func(w int) {
		var m core.Metrics
		core.MaxCandidateSetWorkers(g, tp, w, &m)
	})

	var m core.Metrics
	level := core.MaxCandidateSetWorkers(g, tp, 0, &m)
	measure("search", func(w int) {
		var m core.Metrics
		core.SearchOn(context.Background(), level, tp, nil, nil, false, w, &m)
	})

	var seqCount, parCount int64
	measure("pipeline", func(w int) {
		cfg := core.DefaultConfig(*k)
		cfg.Workers = w
		cfg.CountMatches = true
		res, err := core.Run(g, tp, cfg)
		if err != nil {
			log.Fatal(err)
		}
		total := int64(0)
		for _, sol := range res.Solutions {
			total += sol.MatchCount
		}
		if w == 0 {
			seqCount = total
		} else {
			parCount = total
		}
	})
	if seqCount != parCount {
		log.Fatalf("result mismatch: sequential counted %d matches, parallel %d", seqCount, parCount)
	}
	fmt.Printf("pipeline match counts agree: %d\n", seqCount)

	rep.Compaction = benchCompaction(g, tp, *k, *reps, *compactBelow)
	rep.Governance = benchGovernance(g, tp, *k, *reps)
	rep.Chaos = benchChaos(g, tp, *k, *reps, *chaosRanks)
	rep.TCP = benchTCP(g, tp, *k, *reps, *chaosRanks)
	rep.Caching = benchCaching(g, tp, *k, *reps, seqCount)
	rep.Incremental = benchIncremental(g, tp, *k, *reps)
	rep.Redundancy = benchRedundancy(g, *reps)
	rep.Durability = benchDurability(g, *reps)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchCompaction times the full δ=k…0 pipeline with search-space
// compaction off and on (best of reps each), records the per-level
// active-fraction trajectory from the compaction-on run, and cross-checks
// that both runs count the same matches.
func benchCompaction(g *graph.Graph, tp *pattern.Template, k, reps int, threshold float64) compactionReport {
	run := func(th float64) *core.Result {
		cfg := core.DefaultConfig(k)
		cfg.CountMatches = true
		cfg.CompactBelow = th
		res, err := core.Run(g, tp, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	total := func(res *core.Result) int64 {
		var n int64
		for _, sol := range res.Solutions {
			n += sol.MatchCount
		}
		return n
	}

	var offRes, onRes *core.Result
	off := best(reps, func() { offRes = run(0) })
	on := best(reps, func() { onRes = run(threshold) })
	if total(offRes) != total(onRes) {
		log.Fatalf("compaction changed results: off counted %d matches, on %d",
			total(offRes), total(onRes))
	}

	cr := compactionReport{
		Threshold:      threshold,
		OffMS:          ms(off),
		OnMS:           ms(on),
		Speedup:        off.Seconds() / on.Seconds(),
		Compactions:    onRes.Metrics.Compactions,
		BytesReclaimed: onRes.Metrics.CompactionBytesReclaimed,
		MatchCount:     total(onRes),
	}
	for _, l := range onRes.Levels {
		cr.Levels = append(cr.Levels, levelReport{
			Dist:           l.Dist,
			Prototypes:     l.Prototypes,
			ActiveFraction: l.ActiveFraction,
			Compacted:      l.Compacted,
		})
		fmt.Printf("  δ=%d: %d prototypes, active fraction %.3f, compacted=%v\n",
			l.Dist, l.Prototypes, l.ActiveFraction, l.Compacted)
	}
	fmt.Printf("compaction (<%.2f): off %8.1fms  on %8.1fms  speedup %.2fx  views=%d  reclaimed=%dB\n",
		threshold, cr.OffMS, cr.OnMS, cr.Speedup, cr.Compactions, cr.BytesReclaimed)
	return cr
}

// benchGovernance times the full pipeline ungoverned, then with an active
// budget tracker whose caps are generous enough to never fire (so the
// measured delta is the per-probe charging overhead, which rides the
// existing amortized cancellation probes and should be near zero), then with
// the work-recycling cache capped to roughly one and a half per-vertex bit
// vectors so every level churns through LRU evictions. Match counts are
// cross-checked across all three runs.
func benchGovernance(g *graph.Graph, tp *pattern.Template, k, reps int) governanceReport {
	run := func(ctx context.Context, cacheBytes int64) *core.Result {
		cfg := core.DefaultConfig(k)
		cfg.CountMatches = true
		cfg.CacheBytes = cacheBytes
		res, err := core.RunContext(ctx, g, tp, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	total := func(res *core.Result) int64 {
		var n int64
		for _, sol := range res.Solutions {
			n += sol.MatchCount
		}
		return n
	}

	var plainRes, govRes, cappedRes *core.Result
	plain := best(reps, func() { plainRes = run(context.Background(), 0) })

	var tracker *core.BudgetTracker
	gov := best(reps, func() {
		t := core.NewBudgetTracker(core.Budget{MaxWork: 1 << 62, MaxBytes: 1 << 62})
		govRes = run(core.WithBudgetTracker(context.Background(), t), 0)
		tracker = t
	})

	// One and a half per-vertex bit vectors: big enough to hold a set, too
	// small to hold two, so the recycling cache evicts on every insertion.
	capBytes := (int64(g.NumVertices())/8+64)*3/2 + 1
	capped := best(reps, func() { cappedRes = run(context.Background(), capBytes) })

	if total(plainRes) != total(govRes) || total(plainRes) != total(cappedRes) {
		log.Fatalf("governance changed results: ungoverned counted %d matches, governed %d, cache-capped %d",
			total(plainRes), total(govRes), total(cappedRes))
	}

	gr := governanceReport{
		UngovernedMS:   ms(plain),
		GovernedMS:     ms(gov),
		OverheadPct:    (gov.Seconds()/plain.Seconds() - 1) * 100,
		WorkCharged:    tracker.WorkUsed(),
		BytesCharged:   tracker.BytesUsed(),
		CacheCapBytes:  capBytes,
		CacheCappedMS:  ms(capped),
		CacheHits:      cappedRes.Metrics.CacheHits,
		CacheEvictions: cappedRes.Metrics.CacheEvictions,
		MatchCount:     total(plainRes),
	}
	fmt.Printf("governance: ungoverned %8.1fms  governed %8.1fms (overhead %+.1f%%)  work charged %d  bytes charged %d\n",
		gr.UngovernedMS, gr.GovernedMS, gr.OverheadPct, gr.WorkCharged, gr.BytesCharged)
	fmt.Printf("  cache capped at %dB: %8.1fms  hits=%d evictions=%d  matches agree: %d\n",
		gr.CacheCapBytes, gr.CacheCappedMS, gr.CacheHits, gr.CacheEvictions, gr.MatchCount)
	return gr
}

// benchChaos times the distributed pipeline under the three transport modes
// (perfect / fault-tolerant-no-faults / faulted) and reports the overhead of
// the at-least-once machinery plus the recovery cost of a seeded fault
// schedule. Each run builds a fresh engine — rank ownership mutates during a
// run, so engines are single-use.
func benchChaos(g *graph.Graph, tp *pattern.Template, k, reps, ranks int) chaosReport {
	faulted := &dist.Faults{
		Seed:          42,
		Drop:          0.02,
		Duplicate:     0.02,
		RetryInterval: 200 * time.Microsecond,
	}
	var lastEngine *dist.Engine
	run := func(f *dist.Faults) int64 {
		e := dist.NewEngine(g, dist.Config{Ranks: ranks, Faults: f})
		opts := dist.DefaultOptions(k)
		opts.CountMatches = true
		res, err := dist.Run(e, tp, opts)
		if err != nil {
			log.Fatal(err)
		}
		lastEngine = e
		var n int64
		for _, sol := range res.Solutions {
			n += sol.MatchCount
		}
		return n
	}

	var perfectN, ftN, faultedN int64
	perfect := best(reps, func() { perfectN = run(nil) })
	ft := best(reps, func() { ftN = run(&dist.Faults{}) })
	fa := best(reps, func() { faultedN = run(faulted) })
	if perfectN != ftN || perfectN != faultedN {
		log.Fatalf("transport changed results: perfect counted %d matches, ft %d, faulted %d",
			perfectN, ftN, faultedN)
	}

	fs := &lastEngine.Stats.Faults
	cr := chaosReport{
		Ranks:         ranks,
		PerfectMS:     ms(perfect),
		FTMS:          ms(ft),
		FTOverheadPct: (ft.Seconds()/perfect.Seconds() - 1) * 100,
		FaultedMS:     ms(fa),
		DropProb:      faulted.Drop,
		DupProb:       faulted.Duplicate,
		Dropped:       fs.Dropped.Load(),
		Duplicated:    fs.Duplicated.Load(),
		Retries:       fs.Retries.Load(),
		Redeliveries:  fs.Redeliveries.Load(),
		AcksSent:      fs.AcksSent.Load(),
		MatchCount:    perfectN,
	}
	fmt.Printf("chaos (ranks=%d): perfect %8.1fms  ft %8.1fms (overhead %+.1f%%)  faulted %8.1fms\n",
		ranks, cr.PerfectMS, cr.FTMS, cr.FTOverheadPct, cr.FaultedMS)
	fmt.Printf("  faulted run: dropped=%d duplicated=%d retries=%d redeliveries=%d acks=%d  matches agree: %d\n",
		cr.Dropped, cr.Duplicated, cr.Retries, cr.Redeliveries, cr.AcksSent, cr.MatchCount)
	return cr
}

// benchTCP times the fault-tolerant pipeline over the real-socket rank
// transport: in-memory FT mailboxes (the benchChaos ft mode) against TCP
// with clean sockets (pure wire-codec plus kernel-stack cost) and TCP under
// an injected socket-fault schedule (the recovery cost of torn connections
// and partial writes). Engines owning sockets are closed after each run.
func benchTCP(g *graph.Graph, tp *pattern.Template, k, reps, ranks int) tcpReport {
	sf := &dist.SocketFaults{
		Seed:         42,
		ConnDrop:     0.01,
		PartialWrite: 0.01,
	}
	var lastEngine *dist.Engine
	run := func(tcp *dist.TCPOptions) int64 {
		e := dist.NewEngine(g, dist.Config{
			Ranks: ranks,
			TCP:   tcp,
			Faults: &dist.Faults{
				RetryInterval: 200 * time.Microsecond,
			},
		})
		defer e.Close()
		opts := dist.DefaultOptions(k)
		opts.CountMatches = true
		res, err := dist.Run(e, tp, opts)
		if err != nil {
			log.Fatal(err)
		}
		lastEngine = e
		var n int64
		for _, sol := range res.Solutions {
			n += sol.MatchCount
		}
		return n
	}

	var memN, cleanN, faultedN int64
	mem := best(reps, func() { memN = run(nil) })
	clean := best(reps, func() { cleanN = run(&dist.TCPOptions{}) })
	faulted := best(reps, func() { faultedN = run(&dist.TCPOptions{SocketFaults: sf}) })
	if memN != cleanN || memN != faultedN {
		log.Fatalf("transport changed results: in-memory counted %d matches, tcp %d, tcp-faulted %d",
			memN, cleanN, faultedN)
	}

	fs := &lastEngine.Stats.Faults
	tr := tcpReport{
		Ranks:            ranks,
		InMemoryFTMS:     ms(mem),
		TCPCleanMS:       ms(clean),
		TCPOverheadPct:   (clean.Seconds()/mem.Seconds() - 1) * 100,
		TCPFaultedMS:     ms(faulted),
		ConnDropProb:     sf.ConnDrop,
		PartialWriteProb: sf.PartialWrite,
		SockFrames:       fs.SockFrames.Load(),
		SockBytes:        fs.SockBytes.Load(),
		SockDials:        fs.SockDials.Load(),
		SockConnDrops:    fs.SockConnDrops.Load(),
		SockPartialWr:    fs.SockPartialWrites.Load(),
		SockDelays:       fs.SockDelays.Load(),
		Retries:          fs.Retries.Load(),
		MatchCount:       memN,
	}
	fmt.Printf("tcp (ranks=%d): in-memory ft %8.1fms  tcp %8.1fms (overhead %+.1f%%)  tcp-faulted %8.1fms\n",
		ranks, tr.InMemoryFTMS, tr.TCPCleanMS, tr.TCPOverheadPct, tr.TCPFaultedMS)
	fmt.Printf("  faulted run: frames=%d bytes=%d dials=%d conndrops=%d partialwrites=%d retries=%d  matches agree: %d\n",
		tr.SockFrames, tr.SockBytes, tr.SockDials, tr.SockConnDrops, tr.SockPartialWr, tr.Retries, tr.MatchCount)
	return tr
}

// benchCaching drives the real HTTP serving path (handler invoked in
// process) to time a cold query against a warm isomorphic resubmission,
// cross-checking that the warm body is byte-identical to the cold one and
// that its match counts agree with the directly-computed expected total.
// A second server with the result cache off isolates the shared NLCC
// store's cross-query work recycling.
func benchCaching(g *graph.Graph, tp *pattern.Template, k, reps int, expected int64) cachingReport {
	var buf bytes.Buffer
	if err := pattern.Write(&buf, tp); err != nil {
		log.Fatal(err)
	}
	baseText := buf.String()
	isoText := isomorphicText(tp)

	post := func(h http.Handler, text string) []byte {
		body, err := json.Marshal(map[string]any{"template": text, "k": k, "count": true})
		if err != nil {
			log.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/match", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			log.Fatalf("caching bench: /match returned %d: %s", w.Code, w.Body.String())
		}
		return w.Body.Bytes()
	}
	counts := func(body []byte) int64 {
		var resp server.MatchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			log.Fatal(err)
		}
		var n int64
		for _, p := range resp.Prototypes {
			if p.MatchCount != nil {
				n += *p.MatchCount
			}
		}
		return n
	}
	scrape := func(h http.Handler, metric string) int64 {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
		for _, line := range strings.Split(w.Body.String(), "\n") {
			if v, ok := strings.CutPrefix(line, metric+" "); ok {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					log.Fatal(err)
				}
				return n
			}
		}
		log.Fatalf("caching bench: metric %s not exposed", metric)
		return 0
	}

	s := server.NewWithConfig(g, server.Config{ResultCacheBytes: 64 << 20, SharedNLCC: true, MaxConcurrent: 1})
	h := s.Handler()
	var coldBody, warmBody []byte
	// BumpEpoch restores cold-start behavior between reps — the same
	// invalidation an operator triggers after swapping the graph.
	cold := best(reps, func() { s.BumpEpoch(); coldBody = post(h, baseText) })
	warm := best(reps, func() { warmBody = post(h, isoText) })
	if !bytes.Equal(coldBody, warmBody) {
		log.Fatalf("caching bench: warm body differs from cold\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
	if n := counts(coldBody); n != expected {
		log.Fatalf("caching bench: served %d matches, pipeline counted %d", n, expected)
	}

	s2 := server.NewWithConfig(g, server.Config{SharedNLCC: true, MaxConcurrent: 1})
	h2 := s2.Handler()
	if n := counts(post(h2, baseText)); n != expected { // populate the shared store
		log.Fatalf("caching bench: shared-store cold run counted %d matches, want %d", n, expected)
	}
	var rerunBody []byte
	rerun := best(reps, func() { rerunBody = post(h2, isoText) })
	if n := counts(rerunBody); n != expected {
		log.Fatalf("caching bench: shared-store rerun counted %d matches, want %d", n, expected)
	}

	cr := cachingReport{
		ColdMS:          ms(cold),
		WarmMS:          ms(warm),
		Speedup:         cold.Seconds() / warm.Seconds(),
		SharedRerunMS:   ms(rerun),
		SharedNLCCHits:  scrape(h2, "amatchd_shared_nlcc_hits_total"),
		ResultCacheHits: scrape(h, "amatchd_result_cache_hits_total"),
		MatchCount:      expected,
	}
	fmt.Printf("caching: cold %8.1fms  warm %8.3fms  speedup %.0fx  shared-nlcc rerun %8.1fms (hits=%d)  matches agree: %d\n",
		cr.ColdMS, cr.WarmMS, cr.Speedup, cr.SharedRerunMS, cr.SharedNLCCHits, cr.MatchCount)
	return cr
}

// benchIncremental times incremental maintenance of the benchmark query
// across a deterministic small mutation batch against a from-scratch run on
// the mutated graph. The batch edits a quiet region — low-degree vertices
// whose locality balls are small — which is the workload the incremental
// path exists for: a live stream touching a bounded neighborhood of a huge
// graph. The merged result is verified bit-identical to the from-scratch run
// before any timing is reported.
func benchIncremental(g *graph.Graph, tp *pattern.Template, k, reps int) incrementalReport {
	cfg := core.DefaultConfig(k)
	cfg.CountMatches = true
	prev, err := core.Run(g, tp, cfg)
	if err != nil {
		log.Fatal(err)
	}

	d := quietDelta(g)
	ng, changed, err := graph.ApplyDelta(g, d)
	if err != nil {
		log.Fatal(err)
	}

	var fullRes *core.Result
	full := best(reps, func() {
		fullRes, err = core.Run(ng, tp, cfg)
		if err != nil {
			log.Fatal(err)
		}
	})
	var incRes *core.Result
	var stats *core.DeltaStats
	inc := best(reps, func() {
		incRes, stats, err = core.RunIncremental(prev, ng, changed, cfg)
		if err != nil {
			log.Fatal(err)
		}
	})

	// Cross-check before reporting: the incremental result must be
	// bit-identical to the from-scratch run, not merely close.
	if !incRes.Rho.Equal(fullRes.Rho) {
		log.Fatal("incremental bench: Rho differs from from-scratch run")
	}
	var total int64
	for pi := range fullRes.Solutions {
		fi, ii := fullRes.Solutions[pi].MatchCount, incRes.Solutions[pi].MatchCount
		if fi != ii {
			log.Fatalf("incremental bench: prototype %d counted %d matches incrementally, %d from scratch", pi, ii, fi)
		}
		total += fi
	}

	ir := incrementalReport{
		DeltaInserts:     len(d.Insert),
		DeltaDeletes:     len(d.Delete),
		DeltaRelabels:    len(d.Relabels),
		Radius:           stats.Radius,
		ChangedVertices:  stats.ChangedVertices,
		AffectedVertices: stats.AffectedVertices,
		RegionVertices:   stats.RegionVertices,
		GraphVertices:    g.NumVertices(),
		FullMS:           ms(full),
		IncrementalMS:    ms(inc),
		Speedup:          full.Seconds() / inc.Seconds(),
		MatchCount:       total,
		// The cross-checks above fatal on divergence, so a written report
		// always carries true — the field lets smoke jobs grep for it.
		MatchesAgree: true,
	}
	fmt.Printf("incremental (+%d/-%d edges, %d relabels): full %8.1fms  incremental %8.1fms  speedup %.2fx  region %d/%d vertices (r=%d)  matches agree: %d\n",
		ir.DeltaInserts, ir.DeltaDeletes, ir.DeltaRelabels, ir.FullMS, ir.IncrementalMS,
		ir.Speedup, ir.RegionVertices, ir.GraphVertices, ir.Radius, ir.MatchCount)
	return ir
}

// quietDelta builds a deterministic small mutation batch over the graph's
// quiet periphery — low-degree vertices whose 4-hop neighborhoods are small —
// where a live stream's edits stay local. Every vertex the batch touches
// (both endpoints of every inserted AND deleted edge, every relabeled vertex)
// is screened for a small locality ball; one unscreened hub endpoint would
// inflate the dirty region to a large fraction of the graph and erase the
// locality the incremental path exploits.
func quietDelta(g *graph.Graph) *graph.Delta {
	n := g.NumVertices()
	ballCap := n / 64
	if ballCap < 16 {
		ballCap = 16
	}
	type cand struct{ v, ball int }
	var cands []cand
	for v := 0; v < n && len(cands) < 512; v++ {
		if g.Degree(graph.VertexID(v)) > 2 {
			continue
		}
		if b := ballSize(g, graph.VertexID(v), 4); b <= ballCap {
			cands = append(cands, cand{v, b})
		}
	}
	if len(cands) < 2 {
		// Degenerate graph shape (no quiet periphery): fall back to the
		// lowest-numbered vertices regardless of ball size.
		cands = cands[:0]
		for v := 0; v < n && len(cands) < 16; v++ {
			cands = append(cands, cand{v, ballSize(g, graph.VertexID(v), 4)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ball != cands[j].ball {
			return cands[i].ball < cands[j].ball
		}
		return cands[i].v < cands[j].v
	})
	db := graph.NewDeltaBuilder()
	// Delete an edge whose two endpoints are both screened-quiet (a dyad or
	// chain link in a small component). The quietest candidates above are
	// mostly isolated, so this scans the whole graph for non-isolated quiet
	// vertices separately.
	quiet := make(map[graph.VertexID]bool)
	for v := 0; v < n && len(quiet) < 256; v++ {
		vid := graph.VertexID(v)
		if deg := g.Degree(vid); deg >= 1 && deg <= 2 && ballSize(g, vid, 4) <= ballCap {
			quiet[vid] = true
		}
	}
	del := 0
	for v := 0; v < n && del == 0; v++ {
		vid := graph.VertexID(v)
		if !quiet[vid] {
			continue
		}
		for _, w := range g.Neighbors(vid) {
			if w > vid && quiet[w] {
				db.DeleteEdge(vid, w)
				del++
				break
			}
		}
	}
	if len(cands) > 16 {
		cands = cands[:16]
	}
	inserted := 0
	for i := 0; i+1 < len(cands) && inserted < 3; i++ {
		u, w := graph.VertexID(cands[i].v), graph.VertexID(cands[i+1].v)
		if u != w && !g.HasEdge(u, w) {
			db.InsertEdge(u, w)
			inserted++
		}
	}
	db.RelabelVertex(graph.VertexID(cands[0].v), g.Label(graph.VertexID(cands[len(cands)-1].v)))
	if len(cands) > 1 {
		db.RelabelVertex(graph.VertexID(cands[1].v), g.Label(graph.VertexID(cands[0].v)))
	}
	return db.Delta()
}

// benchDurability precomputes a valid batch sequence (toggling absent
// edges and relabeling random vertices, applied off to the side so the
// timers see only the log), appends it under each sync policy, and times
// recovery with and without a checkpoint bounding the replay. The
// recovered graph must be signature-identical to the one the batches
// built; divergence is fatal, not reported.
func benchDurability(g *graph.Graph, reps int) durabilityReport {
	const batches = 64
	rng := mrand.New(mrand.NewSource(7))
	n := g.NumVertices()

	// Precompute deltas and the final graph once; appends are then pure
	// log work.
	deltas := make([]*graph.Delta, 0, batches)
	cur := g
	var toggled [][2]graph.VertexID
	for i := 0; i < batches; i++ {
		db := graph.NewDeltaBuilder()
		if len(toggled) > 0 && rng.Intn(2) == 0 {
			e := toggled[len(toggled)-1]
			toggled = toggled[:len(toggled)-1]
			db.DeleteEdge(e[0], e[1])
		} else {
			for {
				u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
				if u != v && !cur.HasEdge(u, v) {
					db.InsertEdge(u, v)
					toggled = append(toggled, [2]graph.VertexID{u, v})
					break
				}
			}
		}
		db.RelabelVertex(graph.VertexID(rng.Intn(n)), cur.Label(graph.VertexID(rng.Intn(n))))
		d := db.Delta()
		ng, _, err := graph.ApplyDelta(cur, d)
		if err != nil {
			log.Fatalf("durability: batch %d invalid: %v", i, err)
		}
		deltas = append(deltas, d)
		cur = ng
	}
	wantSig := dist.GraphSignature(cur)

	dr := durabilityReport{Batches: batches}
	appendAll := func(policy wal.SyncPolicy) (string, *wal.Log) {
		dir, err := os.MkdirTemp("", "walbench")
		if err != nil {
			log.Fatal(err)
		}
		l, _, err := wal.Open(wal.Options{Dir: dir, Sync: policy}, g)
		if err != nil {
			log.Fatal(err)
		}
		for i, d := range deltas {
			if err := l.Append(uint64(i+1), d); err != nil {
				log.Fatalf("durability: append %d: %v", i, err)
			}
		}
		return dir, l
	}
	timeAppends := func(policy wal.SyncPolicy) float64 {
		t := best(reps, func() {
			dir, l := appendAll(policy)
			l.Close()
			os.RemoveAll(dir)
		})
		return ms(t)
	}
	dr.AppendAlwaysMS = timeAppends(wal.SyncAlways)
	dr.AppendIntervalMS = timeAppends(wal.SyncInterval)
	dr.AppendNoneMS = timeAppends(wal.SyncNone)

	// Recovery, tail replay: rebuild the log once more (always-sync, the
	// durable configuration) and reopen it.
	dir, l := appendAll(wal.SyncAlways)
	defer os.RemoveAll(dir)
	dr.WALBytes = l.Stats().Bytes
	if err := l.Close(); err != nil {
		log.Fatal(err)
	}
	l2, rec, err := wal.Open(wal.Options{Dir: dir}, g)
	if err != nil {
		log.Fatalf("durability: tail recovery: %v", err)
	}
	if got := dist.GraphSignature(rec.Graph); got != wantSig || rec.Epoch != batches {
		log.Fatalf("durability: tail recovery diverged: epoch %d sig %x, want %d/%x",
			rec.Epoch, got, batches, wantSig)
	}
	dr.ReplayRecoveryMS = ms(rec.Elapsed)
	dr.ReplayRecords = rec.Replayed

	// Checkpoint, then recovery bounded by it.
	ckptStart := time.Now()
	if err := l2.Checkpoint(cur, batches); err != nil {
		log.Fatalf("durability: checkpoint: %v", err)
	}
	dr.CheckpointWriteMS = ms(time.Since(ckptStart))
	if err := l2.Close(); err != nil {
		log.Fatal(err)
	}
	_, rec2, err := wal.Open(wal.Options{Dir: dir}, g)
	if err != nil {
		log.Fatalf("durability: checkpoint recovery: %v", err)
	}
	if got := dist.GraphSignature(rec2.Graph); got != wantSig || rec2.Epoch != batches || !rec2.FromCheckpoint {
		log.Fatalf("durability: checkpoint recovery diverged: %+v sig %x, want epoch %d from checkpoint, sig %x",
			rec2, got, batches, wantSig)
	}
	dr.CheckpointRecoveryMS = ms(rec2.Elapsed)
	dr.CheckpointReplayed = rec2.Replayed
	dr.SignatureAgree = true

	fmt.Printf("durability: %d batches  append always %8.1fms  interval %8.1fms  none %8.1fms\n",
		batches, dr.AppendAlwaysMS, dr.AppendIntervalMS, dr.AppendNoneMS)
	fmt.Printf("durability: recovery tail-replay %8.1fms (%d records)  checkpointed %8.1fms (%d records)  signatures agree\n",
		dr.ReplayRecoveryMS, dr.ReplayRecords, dr.CheckpointRecoveryMS, dr.CheckpointReplayed)
	return dr
}

// ballSize returns |ball(v, radius)| by BFS.
func ballSize(g *graph.Graph, v graph.VertexID, radius int) int {
	dist := map[graph.VertexID]int{v: 0}
	queue := []graph.VertexID{v}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if dist[u] >= radius {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return len(dist)
}

// isomorphicText renders tp under a rotated vertex numbering with flipped
// edge endpoints — a client resubmitting "the same" template differently.
func isomorphicText(tp *pattern.Template) string {
	n := tp.NumVertices()
	perm := make([]int, n)
	for q := 0; q < n; q++ {
		perm[q] = (q + 1) % n
	}
	labels := make([]pattern.Label, n)
	for q := 0; q < n; q++ {
		labels[perm[q]] = tp.Label(q)
	}
	edges := make([]pattern.Edge, tp.NumEdges())
	mand := make([]bool, tp.NumEdges())
	var elabels []pattern.Label
	if tp.HasEdgeLabels() {
		elabels = make([]pattern.Label, tp.NumEdges())
	}
	for i, e := range tp.Edges() {
		edges[len(edges)-1-i] = pattern.Edge{I: perm[e.J], J: perm[e.I]}
		mand[len(edges)-1-i] = tp.Mandatory(i)
		if elabels != nil {
			elabels[len(edges)-1-i] = tp.EdgeLabel(i)
		}
	}
	iso, err := pattern.NewEdgeLabeled(labels, edges, elabels, mand)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pattern.Write(&buf, iso); err != nil {
		log.Fatal(err)
	}
	return buf.String()
}

// benchRedundancy counts two symmetric templates over the modal label —
// triangle (|Aut| = 6) and 4-clique (|Aut| = 24) — with the redundancy
// eliminations fully off (NoSymmetry + NoGuards) and fully on, cross-checks
// the counts, and reports times, enumeration-expansion counters and guard
// activity. The clique templates are where symmetry breaking bites hardest:
// the restricted enumeration explores ≈1/|Aut| of the baseline's expansions.
func benchRedundancy(g *graph.Graph, reps int) []redundancyCase {
	a := cliqueLabel(g)
	cases := []struct {
		name string
		tp   *pattern.Template
	}{
		{"triangle", pattern.MustNew([]pattern.Label{a, a, a},
			[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})},
		{"4-clique", pattern.MustNew([]pattern.Label{a, a, a, a},
			[]pattern.Edge{{I: 0, J: 1}, {I: 0, J: 2}, {I: 0, J: 3}, {I: 1, J: 2}, {I: 1, J: 3}, {I: 2, J: 3}})},
	}
	var out []redundancyCase
	for _, c := range cases {
		run := func(off bool) *core.Result {
			cfg := core.DefaultConfig(0)
			cfg.CountMatches = true
			cfg.NoSymmetry = off
			cfg.NoGuards = off
			res, err := core.Run(g, c.tp, cfg)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		var baseRes, optRes *core.Result
		base := best(reps, func() { baseRes = run(true) })
		opt := best(reps, func() { optRes = run(false) })
		if baseRes.Solutions[0].MatchCount != optRes.Solutions[0].MatchCount {
			log.Fatalf("redundancy bench (%s): baseline counted %d matches, optimized %d",
				c.name, baseRes.Solutions[0].MatchCount, optRes.Solutions[0].MatchCount)
		}
		rc := redundancyCase{
			Template:            c.name,
			AutOrder:            len(pattern.Automorphisms(c.tp)),
			BaselineMS:          ms(base),
			OptimizedMS:         ms(opt),
			Speedup:             base.Seconds() / opt.Seconds(),
			BaselineExpansions:  baseRes.Metrics.EnumExpansions,
			OptimizedExpansions: optRes.Metrics.EnumExpansions,
			GuardsSet:           optRes.Metrics.GuardsSet,
			GuardHits:           optRes.Metrics.GuardHits,
			MatchCount:          optRes.Solutions[0].MatchCount,
			// The cross-check above fatals on divergence, so a written
			// report always carries true — smoke jobs grep for it.
			MatchesAgree: true,
		}
		if rc.OptimizedExpansions > 0 {
			rc.ExpansionReduction = float64(rc.BaselineExpansions) / float64(rc.OptimizedExpansions)
		}
		out = append(out, rc)
		fmt.Printf("redundancy (%s, |Aut|=%d): off %8.1fms  on %8.1fms  speedup %.2fx  expansions %d -> %d (%.1fx)  guards set=%d hits=%d  matches agree: %d\n",
			rc.Template, rc.AutOrder, rc.BaselineMS, rc.OptimizedMS, rc.Speedup,
			rc.BaselineExpansions, rc.OptimizedExpansions, rc.ExpansionReduction,
			rc.GuardsSet, rc.GuardHits, rc.MatchCount)
	}
	return out
}

// cliqueLabel returns the label with the most intra-label edges (both
// endpoints carrying it) — the class where mono-label cliques live. The
// benchmark graph's labels are degree buckets, so the modal *vertex* label
// is the degree-1 bucket, which cannot form a triangle at all.
func cliqueLabel(g *graph.Graph) pattern.Label {
	intra := make(map[pattern.Label]int64)
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		l := pattern.Label(g.Label(vid))
		for _, w := range g.Neighbors(vid) {
			if w > vid && pattern.Label(g.Label(w)) == l {
				intra[l]++
			}
		}
	}
	bestL, bestN := pattern.Label(0), int64(-1)
	for l, n := range intra {
		if n > bestN || (n == bestN && l < bestL) {
			bestL, bestN = l, n
		}
	}
	return bestL
}

// modalLabels returns the two labels that appear most often on edge
// endpoints (isolated-vertex labels never survive the candidate set).
func modalLabels(g *graph.Graph) (pattern.Label, pattern.Label) {
	freq := make(map[pattern.Label]int64)
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if len(g.Neighbors(vid)) > 0 {
			freq[g.Label(vid)]++
		}
	}
	type lf struct {
		l pattern.Label
		n int64
	}
	var ranked []lf
	for l, n := range freq {
		ranked = append(ranked, lf{l, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].l < ranked[j].l
	})
	a, b := ranked[0].l, ranked[0].l
	if len(ranked) > 1 {
		b = ranked[1].l
	}
	return a, b
}

// benchTemplate builds a triangle over the two modal labels, so the
// benchmark exercises the kernels on the densest candidate classes instead
// of a vacuous label mix.
func benchTemplate(g *graph.Graph) *pattern.Template {
	a, b := modalLabels(g)
	return pattern.MustNew([]pattern.Label{a, b, a},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
}

func best(reps int, f func()) time.Duration {
	bestD := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < bestD {
			bestD = d
		}
	}
	return bestD
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
