package main

import (
	"fmt"
	"io"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/datagen"
	"approxmatch/internal/dist"
	"approxmatch/internal/graph"
	"approxmatch/internal/motif"
	"approxmatch/internal/naive"
	"approxmatch/internal/pattern"
)

// expFig7 compares the naïve approach (each prototype searched
// independently on the full graph) against the optimized pipeline for the
// paper's pattern/graph combinations.
func expFig7(w io.Writer, quick bool) {
	sz := sizesFor(quick)
	type workload struct {
		name string
		g    *graph.Graph
		tpl  *pattern.Template
		k    int
	}
	rmatG := datagen.RMATGraph(sz.rmatBase + 2)
	workloads := []workload{
		{"RMAT-1", rmatG, datagen.RMAT1(rmatG), 2},
		{"WDC-1", wdc(quick), datagen.WDC1(), 2},
		{"WDC-2", wdc(quick), datagen.WDC2(), 2},
		{"WDC-3", wdc(quick), datagen.WDC3(), wdc3K(quick)},
		{"RDT-1", reddit(quick), datagen.RDT1(), datagen.RDT1EditDistance},
		{"IMDB-1", imdb(quick), datagen.IMDB1(), datagen.IMDB1EditDistance},
	}
	var rows [][]string
	var totalSpeedup float64
	for _, wl := range workloads {
		var naiveTime, hgtTime time.Duration
		naiveTime = timed(func() {
			if _, err := naive.Run(wl.g, wl.tpl, wl.k, false); err != nil {
				panic(err)
			}
		})
		hgtTime = timed(func() {
			if _, err := core.Run(wl.g, wl.tpl, core.DefaultConfig(wl.k)); err != nil {
				panic(err)
			}
		})
		totalSpeedup += float64(naiveTime) / float64(hgtTime)
		rows = append(rows, []string{
			wl.name,
			fmt.Sprintf("%d", wl.g.NumEdges()),
			fmt.Sprintf("%d", wl.k),
			ms(naiveTime), ms(hgtTime), speedup(naiveTime, hgtTime),
		})
	}
	// 4-Motif on the YouTube-like graph, with counting (as in the paper).
	yt := datagen.PowerLaw(sz.motifVertices, 4, 104)
	var naiveT, hgtT time.Duration
	clique := motif.Clique(4)
	naiveT = timed(func() {
		if _, err := naive.Run(yt, clique, clique.NumEdges(), true); err != nil {
			panic(err)
		}
	})
	hgtT = timed(func() {
		cfg := core.DefaultConfig(0)
		if _, _, err := motif.PipelineCounts(yt, 4, cfg); err != nil {
			panic(err)
		}
	})
	totalSpeedup += float64(naiveT) / float64(hgtT)
	rows = append(rows, []string{
		"4-Motif (YouTube-like)",
		fmt.Sprintf("%d", yt.NumEdges()), "6 (all)",
		ms(naiveT), ms(hgtT), speedup(naiveT, hgtT),
	})
	table(w, []string{"pattern (graph)", "|E|", "k", "naïve", "HGT", "speedup"}, rows)
	fmt.Fprintf(w, "\naverage speedup: %.1fx (paper reports 3.8x average)\n", totalSpeedup/float64(len(rows)))
}

// expFig8 breaks WDC-3 down per edit-distance level under the paper's four
// scenarios: the naïve baseline, X (search-space reduction only), Y (X +
// work recycling) and Z (Y + parallel prototype search).
func expFig8(w io.Writer, quick bool) {
	g := wdc(quick)
	tpl := datagen.WDC3()
	k := wdc3K(quick)

	// Naïve, grouped per level.
	set, _ := naive.Run(g, tpl, 0, false) // set only; cheap run at k=0
	_ = set
	naiveLevel := map[int]time.Duration{}
	nres, err := naive.Run(g, tpl, k, false)
	if err != nil {
		panic(err)
	}
	// Re-run per prototype to time levels (naive.Run is monolithic):
	// approximate by equal division of measured per-prototype searches.
	naiveTotal := timed(func() {
		if _, err := naive.Run(g, tpl, k, false); err != nil {
			panic(err)
		}
	})
	for d := 0; d <= nres.Set.MaxDist; d++ {
		naiveLevel[d] = naiveTotal * time.Duration(nres.Set.CountAt(d)) / time.Duration(nres.Set.Count())
	}

	run := func(cfg core.Config) map[int]time.Duration {
		res, err := core.Run(g, tpl, cfg)
		if err != nil {
			panic(err)
		}
		out := map[int]time.Duration{}
		for _, lvl := range res.Levels {
			out[lvl.Dist] = lvl.Duration
		}
		return out
	}
	x := core.Config{EditDistance: k, LabelPairRefinement: true} // reduction only
	y := x
	y.WorkRecycling = true
	y.FrequencyOrdering = true
	xLevel := run(x)
	yLevel := run(y)
	zLevel := map[int]time.Duration{}
	{
		res, err := core.RunParallel(g, tpl, y, 8)
		if err != nil {
			panic(err)
		}
		for _, lvl := range res.Levels {
			zLevel[lvl.Dist] = lvl.Duration
		}
	}

	var rows [][]string
	res, _ := core.Run(g, tpl, core.DefaultConfig(k))
	for d := res.Set.MaxDist; d >= 0; d-- {
		var verts int
		var labels int64
		for _, lvl := range res.Levels {
			if lvl.Dist == d {
				verts = lvl.ActiveVertices
				labels = lvl.LabelsGenerated
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", res.Set.CountAt(d)),
			fmt.Sprintf("%d", verts),
			fmt.Sprintf("%d", labels),
			ms(naiveLevel[d]), ms(xLevel[d]), ms(yLevel[d]), ms(zLevel[d]),
		})
	}
	table(w, []string{"k", "#p_k", "|V*_k|", "labels", "naïve (est/level)", "X: reduction", "Y: +recycling", "Z: +parallel"}, rows)
}

// expMessages reproduces the §5.7 message-analysis table on WDC-2: total
// logical messages for naïve vs HGT, the remote fraction (from the
// distributed engine) and the share spent on candidate-set generation.
func expMessages(w io.Writer, quick bool) {
	g := wdc(quick)
	tpl := datagen.WDC2()
	const k = 2

	nres, err := naive.Run(g, tpl, k, false)
	if err != nil {
		panic(err)
	}
	var naiveTime, hgtTime time.Duration
	naiveTime = timed(func() {
		if _, err := naive.Run(g, tpl, k, false); err != nil {
			panic(err)
		}
	})
	var hres *core.Result
	hgtTime = timed(func() {
		hres, err = core.Run(g, tpl, core.DefaultConfig(k))
		if err != nil {
			panic(err)
		}
	})
	// Remote fraction from a distributed run with the paper-like 36-rank
	// node shape scaled down.
	e := dist.NewEngine(g, dist.Config{Ranks: 8, RanksPerNode: 4, DelegateThreshold: 512})
	if _, err := dist.Run(e, tpl, dist.DefaultOptions(k)); err != nil {
		panic(err)
	}
	remotePct := 100 * float64(e.Stats.Remote()) / float64(e.Stats.Total())
	nm, hm := nres.Metrics.TotalMessages(), hres.Metrics.TotalMessages()
	candPct := 100 * float64(hres.Metrics.CandidateMessages) / float64(hm)

	table(w, []string{"", "naïve", "HGT", "improvement"}, [][]string{
		{"total messages", fmt.Sprintf("%d", nm), fmt.Sprintf("%d", hm), fmt.Sprintf("%.1fx", float64(nm)/float64(hm))},
		{"% remote (dist engine)", "—", fmt.Sprintf("%.1f%%", remotePct), ""},
		{"% due to max-candidate set", "n/a", fmt.Sprintf("%.1f%%", candPct), ""},
		{"time", ms(naiveTime), ms(hgtTime), speedup(naiveTime, hgtTime)},
	})
}
