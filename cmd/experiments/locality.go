package main

import (
	"fmt"
	"io"
	"time"

	"approxmatch/internal/datagen"
	"approxmatch/internal/dist"
)

// expFig12 reproduces the locality study: a fixed partitioning (fixed rank
// count) mapped onto varying node counts. The measured quantities are the
// per-rank work distribution and message locality; the runtime column
// applies the documented cost model (oversubscribed cores at one extreme,
// all-network traffic at the other).
func expFig12(w io.Writer, quick bool) {
	g := wdc(quick)
	tpl := datagen.WDC2()
	const ranks = 48
	e := dist.NewEngine(g, dist.Config{Ranks: ranks, RanksPerNode: 8, DelegateThreshold: 512})
	if _, err := dist.Run(e, tpl, dist.DefaultOptions(2)); err != nil {
		panic(err)
	}
	cm := dist.DefaultCostModel()
	cm.CoresPerNode = 8 // scaled-down "36-core node"

	// Measured column: re-run with per-message latency injection (the
	// receiving rank sleeps per remote message; sleeps overlap across rank
	// goroutines). This measures communication-latency exposure; the core
	// contention of the one-node extreme only appears in the modeled
	// column (this host cannot oversubscribe what it does not have).
	measured := func(rpn int) time.Duration {
		cfg := dist.Config{
			Ranks: ranks, RanksPerNode: rpn, DelegateThreshold: 512,
			InterRankDelay: 2 * time.Microsecond,
			InterNodeDelay: 20 * time.Microsecond,
		}
		if quick {
			cfg.InterRankDelay = 4 * time.Microsecond
			cfg.InterNodeDelay = 40 * time.Microsecond
		}
		em := dist.NewEngine(g, cfg)
		start := time.Now()
		if _, err := dist.Run(em, tpl, dist.DefaultOptions(2)); err != nil {
			panic(err)
		}
		return time.Since(start)
	}

	groupings := []int{ranks, ranks / 2, ranks / 4, ranks / 8, 2, 1}
	var rows [][]string
	best := -1
	bestTime := 0.0
	for i, rpn := range groupings {
		t := dist.ModeledTime(e, cm, rpn)
		if best == -1 || t < bestTime {
			best, bestTime = i, t
		}
		nodes := (ranks + rpn - 1) / rpn
		rows = append(rows, []string{
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%d", rpn),
			fmt.Sprintf("%.0f", t),
			ms(measured(rpn)),
		})
	}
	rows[best][2] += " ← best"
	table(w, []string{"nodes", "ranks/node", "modeled time (arb. units)", "measured wall (latency-injected)"}, rows)
	fmt.Fprintf(w, "\ntotal messages %d, %.1f%% remote. Modeled shape: extremes lose (oversubscription on one node; all-network with one rank per node) — the paper's Fig. 12 U-curve. The measured column shows the network side of the curve (latency exposure growing as locality drops); the one-node compute-contention arm needs real cores.\n",
		e.Stats.Total(), 100*float64(e.Stats.Remote())/float64(e.Stats.Total()))
}
