package main

import (
	"fmt"
	"io"
	"time"

	"approxmatch/internal/datagen"
	"approxmatch/internal/dist"
	"approxmatch/internal/pattern"
)

// expFig4 reproduces the weak-scaling experiment: R-MAT graphs doubling in
// size with rank counts doubling alongside, searching the RMAT-1 pattern
// (k=2, 24 prototypes). The paper's "flat line" criterion translates here
// to a roughly constant normalized cost: per-rank work and messages per
// edge stay flat as graph and deployment grow together. (This host runs
// all ranks on shared cores, so raw wall time cannot be flat; the
// normalized columns carry the scaling signal.)
func expFig4(w io.Writer, quick bool) {
	sz := sizesFor(quick)
	var rows [][]string
	ranks := 2
	for step := 0; step < sz.rmatSteps; step++ {
		scale := sz.rmatBase + step
		g, tpl := datagen.RMATWithPattern(scale)
		e := dist.NewEngine(g, dist.Config{Ranks: ranks, RanksPerNode: 2, DelegateThreshold: 1024})
		var protos, matches int
		elapsed := timed(func() {
			res, err := dist.Run(e, tpl, dist.DefaultOptions(2))
			if err != nil {
				panic(err)
			}
			protos = res.Set.Count()
			for _, sol := range res.Solutions {
				matches += sol.Verts.Count()
			}
		})
		perRank := maxComputePerRank(e)
		msgs := e.Stats.Total()
		rows = append(rows, []string{
			fmt.Sprintf("%d", scale),
			fmt.Sprintf("%d", ranks),
			fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%d", protos),
			ms(elapsed),
			fmt.Sprintf("%d", perRank),
			fmt.Sprintf("%.2f", float64(msgs)/float64(g.NumEdges())),
			fmt.Sprintf("%d", matches),
		})
		ranks *= 2
	}
	table(w, []string{"R-MAT scale", "ranks", "|E|", "#p", "wall", "max work/rank", "msgs per edge", "matching vertices (Σ protos)"}, rows)
	fmt.Fprintln(w, "\nWeak-scaling criterion: 'max work/rank' and 'msgs per edge' stay roughly flat as scale and ranks double together (the paper's flat runtime line).")
}

// expFig6 reproduces strong scaling on the WDC-like graph for WDC-1/2/3:
// fixed input, rank count growing. The modeled-time column applies the
// cost model to the measured per-rank work and message locality (wall time
// on this single-core host cannot expose parallel speedup).
func expFig6(w io.Writer, quick bool) {
	g := wdc(quick)
	pats := []struct {
		name string
		tpl  *pattern.Template
		k    int
	}{
		{"WDC-1", datagen.WDC1(), 2},
		{"WDC-2", datagen.WDC2(), 2},
		{"WDC-3", datagen.WDC3(), wdc3K(quick)},
	}
	rankSets := []int{4, 8, 16}
	if quick {
		rankSets = []int{2, 4}
	}
	for _, p := range pats {
		var rows [][]string
		var baseModel float64
		for _, ranks := range rankSets {
			e := dist.NewEngine(g, dist.Config{Ranks: ranks, RanksPerNode: 4, DelegateThreshold: 512})
			var levels string
			var elapsed time.Duration
			res, err := func() (*dist.Result, error) {
				var r *dist.Result
				var err error
				elapsed = timed(func() { r, err = dist.Run(e, p.tpl, dist.DefaultOptions(p.k)) })
				return r, err
			}()
			if err != nil {
				panic(err)
			}
			for _, lvl := range res.Levels {
				levels += fmt.Sprintf("δ%d:%s ", lvl.Dist, lvl.Duration.Round(time.Millisecond))
			}
			model := dist.ModeledTime(e, dist.DefaultCostModel(), 4)
			if baseModel == 0 {
				baseModel = model
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", ranks),
				fmt.Sprintf("%d", res.Set.Count()),
				ms(elapsed),
				levels,
				fmt.Sprintf("%.2fx", baseModel/model),
			})
		}
		fmt.Fprintf(w, "\n**%s** (k=%d):\n\n", p.name, p.k)
		table(w, []string{"ranks", "#p", "wall (1-core host)", "per-level", "modeled speedup vs smallest"}, rows)
	}
}

// wdc3K picks the WDC-3 edit distance: the paper uses k=4 (100+
// prototypes); quick mode trims to k=2.
func wdc3K(quick bool) int {
	if quick {
		return 2
	}
	return 3
}

func maxComputePerRank(e *dist.Engine) int64 {
	var max int64
	for r := range e.ComputePerRank {
		if c := e.ComputePerRank[r].Load(); c > max {
			max = c
		}
	}
	return max
}
