// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic stand-in datasets, printing markdown
// tables. EXPERIMENTS.md is produced from this command's output.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run fig7  # run one experiment
//	experiments -quick     # smaller datasets (CI-sized)
//
// Absolute numbers are machine- and scale-dependent; the experiments exist
// to reproduce the paper's *shapes*: who wins, by what rough factor, and
// how the breakdowns look.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

type experiment struct {
	name  string
	title string
	fn    func(w io.Writer, quick bool)
}

var experiments = []experiment{
	{"datasets", "Dataset inventory (the §5 dataset table, synthetic stand-ins)", expDatasets},
	{"fig4", "Fig. 4 — weak scaling on R-MAT with the RMAT-1 pattern", expFig4},
	{"fig6", "Fig. 6 — strong scaling on the WDC-like graph (WDC-1/2/3)", expFig6},
	{"fig7", "Fig. 7 — naïve approach vs HGT across patterns and graphs", expFig7},
	{"fig8", "Fig. 8 — WDC-3 per-level runtime under scenarios naïve/X/Y/Z", expFig8},
	{"fig9a", "Fig. 9(a) — load balancing (NLB vs LB)", expFig9a},
	{"fig9b", "Fig. 9(b) — constraint/prototype ordering and enumeration optimization", expFig9b},
	{"deployments", "§5.4 table — parallel vs sequential prototype search by deployment size", expDeployments},
	{"rdt1", "§5.5 — Reddit adversarial poster–commenter query (RDT-1)", expRDT1},
	{"imdb1", "§5.5 — IMDb same-role-in-two-movies query (IMDB-1)", expIMDB1},
	{"wdc4", "§5.5 — exploratory search from a 6-Clique (WDC-4)", expWDC4},
	{"arabesque", "§5.6 table — TLE (Arabesque-style) baseline vs HGT motif counting", expArabesque},
	{"messages", "§5.7 table — message analysis, naïve vs HGT (WDC-2)", expMessages},
	{"fig11", "Fig. 11 — memory accounting: topology vs algorithm state; naïve vs HGT", expFig11},
	{"fig12", "Fig. 12 — locality: fixed ranks, varying ranks-per-node", expFig12},
}

func main() {
	var (
		run   = flag.String("run", "", "run only the experiment with this name")
		quick = flag.Bool("quick", false, "smaller datasets")
		list  = flag.Bool("list", false, "list experiment names")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.name, e.title)
		}
		return
	}
	w := os.Stdout
	total := time.Now()
	for _, e := range experiments {
		if *run != "" && e.name != *run {
			continue
		}
		fmt.Fprintf(w, "\n## %s\n\n", e.title)
		start := time.Now()
		e.fn(w, *quick)
		fmt.Fprintf(w, "\n_(experiment %s: %v)_\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(total).Round(time.Millisecond))
}

// table prints a markdown table.
func table(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | "))
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.0f ms", float64(d.Microseconds())/1000) }

// speedup formats a ratio.
func speedup(base, opt time.Duration) string {
	if opt <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(opt))
}

// timed runs fn and returns its duration.
func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// sortedKeys returns map keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
