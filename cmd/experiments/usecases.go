package main

import (
	"fmt"
	"io"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/datagen"
)

// expRDT1 runs the §5.5 Reddit query: adversarial poster–commenter
// structures with optional author edges (5 prototypes).
func expRDT1(w io.Writer, quick bool) {
	g := reddit(quick)
	tpl := datagen.RDT1()
	cfg := core.DefaultConfig(datagen.RDT1EditDistance)
	cfg.CountMatches = true
	var res *core.Result
	var err error
	elapsed := timed(func() { res, err = core.Run(g, tpl, cfg) })
	if err != nil {
		panic(err)
	}
	var rows [][]string
	var total, precise int64
	for pi, p := range res.Set.Protos {
		c := res.Solutions[pi].MatchCount
		total += c
		if p.Dist == 0 {
			precise += c
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Dist),
			fmt.Sprintf("%d", pi),
			fmt.Sprintf("%d", res.Solutions[pi].Verts.Count()),
			fmt.Sprintf("%d", c),
		})
	}
	table(w, []string{"δ", "prototype", "vertices", "matches"}, rows)
	fmt.Fprintf(w, "\nprototypes: %d (paper: 5) — total matches %d including %d precise — %v\n",
		res.Set.Count(), total, precise, elapsed.Round(time.Millisecond))
}

// expIMDB1 runs the §5.5 IMDb query: same-role-in-two-recent-Sport-movies
// tuples (7 prototypes).
func expIMDB1(w io.Writer, quick bool) {
	g := imdb(quick)
	tpl := datagen.IMDB1()
	cfg := core.DefaultConfig(datagen.IMDB1EditDistance)
	cfg.CountMatches = true
	var res *core.Result
	var err error
	elapsed := timed(func() { res, err = core.Run(g, tpl, cfg) })
	if err != nil {
		panic(err)
	}
	var rows [][]string
	var total, precise int64
	for pi, p := range res.Set.Protos {
		c := res.Solutions[pi].MatchCount
		total += c
		if p.Dist == 0 {
			precise += c
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Dist),
			fmt.Sprintf("%d", pi),
			fmt.Sprintf("%d", res.Solutions[pi].Verts.Count()),
			fmt.Sprintf("%d", c),
		})
	}
	table(w, []string{"δ", "prototype", "vertices", "matches"}, rows)
	fmt.Fprintf(w, "\nprototypes: %d (paper: 7) — total matches %d including %d precise — %v\n",
		res.Set.Count(), total, precise, elapsed.Round(time.Millisecond))
}

// expWDC4 runs the §5.5 exploratory search: start from a 6-Clique on the
// frequent org label and relax until matches appear.
func expWDC4(w io.Writer, quick bool) {
	g := wdc(quick)
	tpl := datagen.WDC4()
	set, err := core.Run(g, tpl, core.Config{EditDistance: 0})
	if err != nil {
		panic(err)
	}
	_ = set
	protoSet, err := core.RunTopDown(g, tpl, core.DefaultConfig(4))
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "prototype universe within k=4: %d edge subsets (paper: 1,941), folded into %d isomorphism classes\n\n",
		protoSet.Set.MaskCount(), protoSet.Set.Count())
	var rows [][]string
	for _, lvl := range protoSet.Levels {
		rows = append(rows, []string{
			fmt.Sprintf("%d", lvl.Dist),
			fmt.Sprintf("%d", protoSet.Set.MaskCountAt(lvl.Dist)),
			fmt.Sprintf("%d", lvl.Prototypes),
			fmt.Sprintf("%d", lvl.ActiveVertices),
			ms(lvl.Duration),
		})
	}
	table(w, []string{"δ", "edge-subset prototypes", "classes searched", "matching vertices", "time"}, rows)
	if protoSet.FoundDist >= 0 {
		fmt.Fprintf(w, "\nfirst matches at edit distance %d; %d vertices participate (paper: first matches at k=4, 144 vertices)\n",
			protoSet.FoundDist, protoSet.MatchingVertices.Count())
	} else {
		fmt.Fprintln(w, "\nno matches within k=4")
	}
}
