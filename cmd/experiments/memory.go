package main

import (
	"fmt"
	"io"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/core"
	"approxmatch/internal/datagen"
	"approxmatch/internal/naive"
)

// expFig11 reproduces the memory accounting of Fig. 11: (a) the relative
// footprint of graph topology vs per-vertex/per-edge algorithm state, and
// (b) naïve vs HGT peak state, split into topology / static / dynamic.
func expFig11(w io.Writer, quick bool) {
	g := wdc(quick)
	tpl := datagen.WDC2()
	const k = 2

	res, err := core.Run(g, tpl, core.DefaultConfig(k))
	if err != nil {
		panic(err)
	}

	topo := g.TopologyBytes()
	rho := res.Rho.Bytes()
	// ω: one uint64 mask per vertex; ε: one bit per directed slot (active)
	// plus the per-prototype solution bit vectors.
	omega := int64(g.NumVertices()) * 8
	edgeState := int64(g.NumDirectedEdges()) / 8
	var solutions int64
	for _, sol := range res.Solutions {
		solutions += sol.Verts.Bytes() + sol.Edges.Bytes()
	}
	cache := core.NewCache(g.NumVertices()) // shape only; real cache sizes vary
	_ = cache
	stateTotal := rho + omega + edgeState + solutions

	fmt.Fprintln(w, "**(a) Memory breakdown (HGT, WDC-2):**")
	fmt.Fprintln(w)
	pct := func(x int64) string {
		return fmt.Sprintf("%.1f%%", 100*float64(x)/float64(topo+stateTotal))
	}
	table(w, []string{"component", "bytes", "share"}, [][]string{
		{"graph topology (CSR offsets+adjacency+labels)", fmt.Sprintf("%d", topo), pct(topo)},
		{"per-vertex match vectors ρ", fmt.Sprintf("%d", rho), pct(rho)},
		{"candidate masks ω (8B/vertex)", fmt.Sprintf("%d", omega), pct(omega)},
		{"edge state ε (1 bit/directed edge)", fmt.Sprintf("%d", edgeState), pct(edgeState)},
		{"per-prototype solution subgraphs", fmt.Sprintf("%d", solutions), pct(solutions)},
	})
	fmt.Fprintf(w, "\ntopology share: %.0f%% (paper reports ~86%% topology / 14%% state at its scale)\n",
		100*float64(topo)/float64(topo+stateTotal))

	// (b) naïve vs HGT peak "dynamic" state, proxied by peak message/token
	// volume (the paper's message queues dominate the dynamic state).
	nres, err := naive.Run(g, tpl, k, false)
	if err != nil {
		panic(err)
	}
	// Static per-run state is identical in kind; dynamic ∝ messages.
	const bytesPerMsg = 32
	naiveDyn := nres.Metrics.TotalMessages() * bytesPerMsg
	hgtCand := res.Metrics.CandidateMessages * bytesPerMsg
	hgtSearch := (res.Metrics.TotalMessages() - res.Metrics.CandidateMessages) * bytesPerMsg
	static := omega + edgeState + rho

	fmt.Fprintln(w)
	fmt.Fprintln(w, "**(b) Peak state, naïve vs HGT (dynamic ∝ message volume, 32 B/message):**")
	fmt.Fprintln(w)
	table(w, []string{"", "topology", "static state", "dynamic (messages)"}, [][]string{
		{"naïve", fmt.Sprintf("%d", topo), fmt.Sprintf("%d", static), fmt.Sprintf("%d", naiveDyn)},
		{"HGT-C (candidate set)", fmt.Sprintf("%d", topo), fmt.Sprintf("%d", static), fmt.Sprintf("%d", hgtCand)},
		{"HGT-P (prototype search)", fmt.Sprintf("%d", topo), fmt.Sprintf("%d", static), fmt.Sprintf("%d", hgtSearch)},
	})
	if hgtSearch > 0 {
		fmt.Fprintf(w, "\nHGT-P dynamic-state improvement over naïve: %.1fx (paper reports ~4.6x)\n",
			float64(naiveDyn)/float64(hgtSearch))
	}
	_ = bitvec.New
}
