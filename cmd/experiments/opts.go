package main

import (
	"fmt"
	"io"
	"time"

	"approxmatch/internal/constraint"
	"approxmatch/internal/core"
	"approxmatch/internal/datagen"
	"approxmatch/internal/dist"
	"approxmatch/internal/motif"
	"approxmatch/internal/pattern"
)

// expFig9a measures load balancing: distributed runs with and without the
// reshuffle of active vertices after candidate-set pruning. The signal is
// the per-rank work imbalance (max/mean); on a multi-core host the wall
// time follows it.
func expFig9a(w io.Writer, quick bool) {
	g := wdc(quick)
	pats := []struct {
		name string
		tpl  *pattern.Template
		k    int
	}{
		{"WDC-1", datagen.WDC1(), 2},
		{"WDC-2", datagen.WDC2(), 2},
		{"WDC-3", datagen.WDC3(), wdc3K(quick)},
	}
	var rows [][]string
	for _, p := range pats {
		imb := func(rebalance bool) (float64, time.Duration) {
			e := dist.NewEngine(g, dist.Config{Ranks: 8, RanksPerNode: 4})
			opts := dist.DefaultOptions(p.k)
			opts.Rebalance = rebalance
			var d time.Duration
			d = timed(func() {
				if _, err := dist.Run(e, p.tpl, opts); err != nil {
					panic(err)
				}
			})
			return dist.LoadImbalance(e), d
		}
		nlbImb, nlbT := imb(false)
		lbImb, lbT := imb(true)
		rows = append(rows, []string{
			p.name,
			fmt.Sprintf("%.2f", nlbImb), fmt.Sprintf("%.2f", lbImb),
			ms(nlbT), ms(lbT),
			fmt.Sprintf("%.2fx", nlbImb/lbImb),
		})
	}
	table(w, []string{"pattern", "imbalance NLB (max/mean)", "imbalance LB", "wall NLB", "wall LB", "balance gain"}, rows)
}

// expFig9b measures the three ordering/enumeration optimizations of §5.4:
// frequency-based constraint ordering, prototype ordering for parallel
// search, and the δ+1→δ match-enumeration extension.
func expFig9b(w io.Writer, quick bool) {
	g := wdc(quick)

	// (top) Constraint ordering by label frequency.
	{
		var rows [][]string
		for _, p := range []struct {
			name string
			tpl  *pattern.Template
			k    int
		}{
			{"WDC-1", datagen.WDC1(), 2},
			{"WDC-2", datagen.WDC2(), 2},
		} {
			off := core.Config{EditDistance: p.k, WorkRecycling: true, LabelPairRefinement: true}
			on := off
			on.FrequencyOrdering = true
			offRes, err := core.Run(g, p.tpl, off)
			if err != nil {
				panic(err)
			}
			onRes, err := core.Run(g, p.tpl, on)
			if err != nil {
				panic(err)
			}
			rows = append(rows, []string{
				p.name,
				fmt.Sprintf("%d", offRes.Metrics.NLCCMessages),
				fmt.Sprintf("%d", onRes.Metrics.NLCCMessages),
				fmt.Sprintf("%.2fx", float64(offRes.Metrics.NLCCMessages)/float64(max64(onRes.Metrics.NLCCMessages, 1))),
			})
		}
		fmt.Fprintln(w, "**Constraint ordering (rare labels first):** NLCC token messages")
		fmt.Fprintln(w)
		table(w, []string{"pattern", "template order", "frequency order", "reduction"}, rows)
	}

	// (middle) Prototype ordering for parallel search: expensive first.
	{
		tpl := datagen.WDC3()
		k := wdc3K(quick)
		set, err := core.Run(g, tpl, core.Config{EditDistance: 0})
		if err != nil {
			panic(err)
		}
		_ = set
		full, err := core.Run(g, tpl, core.DefaultConfig(k))
		if err != nil {
			panic(err)
		}
		var m core.Metrics
		mcs := core.MaxCandidateSet(g, tpl, &m)
		deepest := full.Set.At(full.Set.MaxDist)
		templates := make([]*pattern.Template, len(deepest))
		for i, pi := range deepest {
			templates[i] = full.Set.Protos[pi].Template
		}
		freq := constraint.LabelFreq{}
		for l, c := range g.LabelFrequencies() {
			freq[l] = c
		}
		natural := dist.SearchPrototypesParallel(mcs, templates, 4, 2, freq)
		order := dist.OrderByEstimatedCost(templates, freq)
		reordered := make([]*pattern.Template, len(templates))
		for i, idx := range order {
			reordered[i] = templates[idx]
		}
		tuned := dist.SearchPrototypesParallel(mcs, reordered, 4, 2, freq)
		fmt.Fprintln(w)
		fmt.Fprintln(w, "**Prototype ordering (overlap expensive searches, 4-way parallel):**")
		fmt.Fprintln(w)
		table(w, []string{"ordering", "wall", "rank-seconds"}, [][]string{
			{"natural", ms(natural.Wall), fmt.Sprintf("%.2f", natural.RankSeconds)},
			{"expensive-first", ms(tuned.Wall), fmt.Sprintf("%.2f", tuned.RankSeconds)},
		})
	}

	// (bottom) Match-enumeration extension on the 4-Motif workload. This
	// is a *divergent* reproduction: see the note printed below.
	{
		sz := sizesFor(quick)
		yt := datagen.PowerLaw(sz.motifVertices, 4, 104)
		cfg := core.DefaultConfig(0)
		counts, res, err := motif.PipelineCounts(yt, 4, cfg)
		if err != nil {
			panic(err)
		}
		_ = counts
		var dm, em core.Metrics
		direct := timed(func() { core.CountAllMatches(res, &dm) })
		var extErr error
		extended := timed(func() { _, extErr = core.CountAllMatchesExtended(res, &em) })
		if extErr != nil {
			panic(extErr)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, "**Match enumeration for edit-distance matching (4-Motif, YouTube-like):**")
		fmt.Fprintln(w)
		table(w, []string{"strategy", "search probes (≈ messages)", "time"}, [][]string{
			{"re-enumerate every prototype", fmt.Sprintf("%d", dm.VerifyMessages), ms(direct)},
			{"extend δ+1 matches by one edge", fmt.Sprintf("%d", em.VerifyMessages), ms(extended)},
		})
		fmt.Fprintf(w, "\nratio: %.1fx — DIVERGES from the paper's 3.9x. Explanation: this engine builds an exact solution subgraph per prototype before enumerating, so re-enumeration explores almost nothing wasted; the paper's gain arises at 200B+ matches where fresh per-prototype searches are distributed token storms over barely-prunable unlabeled graphs. Both code paths are implemented and verified to produce identical counts.\n",
			float64(dm.VerifyMessages)/float64(max64(em.VerifyMessages, 1)))
	}
}

// expDeployments reproduces the §5.4 deployment-size table: once the
// candidate set is pruned, prototypes can be searched in parallel on small
// replicated deployments (minimizing time-to-solution) or sequentially on
// one small deployment (minimizing aggregate CPU time).
func expDeployments(w io.Writer, quick bool) {
	g := wdc(quick)
	tpl := datagen.WDC3()
	k := wdc3K(quick)
	full, err := core.Run(g, tpl, core.DefaultConfig(k))
	if err != nil {
		panic(err)
	}
	var m core.Metrics
	mcs := core.MaxCandidateSet(g, tpl, &m)
	var templates []*pattern.Template
	for _, p := range full.Set.Protos {
		templates = append(templates, p.Template)
	}
	freq := constraint.LabelFreq{}
	for l, c := range g.LabelFrequencies() {
		freq[l] = c
	}

	// Budget of 16 "ranks": split into deployments of varying width.
	type config struct {
		deployments, ranksEach int
		mode                   string
	}
	configs := []config{
		{1, 16, "parallel"}, {2, 8, "parallel"}, {4, 4, "parallel"}, {8, 2, "parallel"},
		{1, 4, "sequential"}, {1, 2, "sequential"},
	}
	var rows [][]string
	for _, c := range configs {
		par := c.deployments
		if c.mode == "sequential" {
			par = 1
		}
		res := dist.SearchPrototypesParallel(mcs, templates, par, c.ranksEach, freq)
		rows = append(rows, []string{
			c.mode,
			fmt.Sprintf("%d x %d ranks", c.deployments, c.ranksEach),
			ms(res.Wall),
			fmt.Sprintf("%.2f", res.RankSeconds),
		})
	}
	// The fully faithful path: checkpoint the candidate set, reload onto
	// replica deployments (each its own engine over the small subgraph)
	// and search prototypes across them — §4's reload-on-smaller-
	// deployment flow end to end.
	rs, err := dist.NewReplicaSet(g, mcs, 4, dist.Config{Ranks: 4, RanksPerNode: 2})
	if err != nil {
		panic(err)
	}
	replicaWall := timed(func() {
		rs.Search(templates, freq, dist.Options{})
	})
	rows = append(rows, []string{
		"checkpoint+reload",
		fmt.Sprintf("4 replicas x 4 ranks over a %d-vertex reload", rs.SubgraphSize()),
		ms(replicaWall),
		"—",
	})
	table(w, []string{"mode", "deployment", "wall (time-to-solution)", "rank-seconds (CPU cost)"}, rows)
	fmt.Fprintln(w, "\nShape: wide single deployments burn CPU for little wall-time gain; small replicated deployments win CPU cost (the paper's 2-node row), parallel replicas win time-to-solution (the paper's 4-node row).")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
