package main

import (
	"errors"
	"fmt"
	"io"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/datagen"
	"approxmatch/internal/graph"
	"approxmatch/internal/motif"
	"approxmatch/internal/tle"
)

// expArabesque reproduces the §5.6 comparison: motif counting with the
// TLE (Arabesque-style, embedding-materializing) baseline vs the matching
// pipeline, on graphs echoing the paper's CiteSeer → LiveJournal ladder.
// The TLE engine runs under an embedding budget; exceeding it is the
// in-process analogue of Arabesque's out-of-memory failure on LiveJournal
// 4-Motif.
func expArabesque(w io.Writer, quick bool) {
	sz := sizesFor(quick)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"CiteSeer-like", datagen.CiteSeerLike()},
		{"Mico-like", datagen.PowerLaw(sz.motifVertices, 5, 102)},
		{"Patent-like", datagen.ER(sz.motifVertices*3, sz.motifVertices*6, 103)},
		{"YouTube-like", datagen.PowerLaw(sz.motifVertices*2, 5, 104)},
		{"LiveJournal-like", datagen.PowerLaw(sz.motifVertices*2, 7, 105)},
	}
	budget := int64(6_000_000)
	if quick {
		budget = 1_500_000
	}
	var rows [][]string
	for _, entry := range graphs {
		row := []string{entry.name, fmt.Sprintf("%d", entry.g.NumEdges())}
		for _, size := range []int{3, 4} {
			var tleCounts map[string]int64
			var tleErr error
			tleTime := timed(func() {
				tleCounts, _, tleErr = tle.CountMotifs(entry.g, size, tle.Config{MaxEmbeddings: budget})
			})
			var hgtCounts motif.Counts
			hgtTime := timed(func() {
				var err error
				hgtCounts, _, err = motif.PipelineCounts(entry.g, size, core.DefaultConfig(0))
				if err != nil {
					panic(err)
				}
			})
			switch {
			case errors.Is(tleErr, tle.ErrOutOfMemory):
				row = append(row, "OOM", ms(hgtTime))
			case tleErr != nil:
				panic(tleErr)
			default:
				// Counts must agree wherever the baseline finished.
				for code, c := range hgtCounts {
					if tleCounts[code] != c {
						panic(fmt.Sprintf("%s %d-motif: count mismatch", entry.name, size))
					}
				}
				row = append(row, ms(tleTime), ms(hgtTime))
			}
		}
		rows = append(rows, row)
	}
	table(w, []string{"graph", "|E|", "TLE 3-Motif", "HGT 3-Motif", "TLE 4-Motif", "HGT 4-Motif"}, rows)
	fmt.Fprintf(w, "\nTLE embedding budget: %d (exceeding it = the paper's Arabesque OOM on LiveJournal 4-Motif). Counts verified equal wherever TLE completes.\n", budget)
	_ = time.Now
}
