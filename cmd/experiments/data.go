package main

import (
	"sync"

	"approxmatch/internal/datagen"
	"approxmatch/internal/graph"
)

// sizes centralizes dataset scales for normal vs quick runs.
type sizes struct {
	wdcVertices    int
	redditAuthors  int
	redditPosts    int
	redditComments int
	imdbMovies     int
	rmatBase       int // smallest weak-scaling scale
	rmatSteps      int
	motifVertices  int // Arabesque-comparison graph scale knob
}

func sizesFor(quick bool) sizes {
	if quick {
		return sizes{
			wdcVertices:    6000,
			redditAuthors:  1500,
			redditPosts:    4000,
			redditComments: 8000,
			imdbMovies:     4000,
			rmatBase:       9,
			rmatSteps:      3,
			motifVertices:  1500,
		}
	}
	return sizes{
		wdcVertices:    30000,
		redditAuthors:  8000,
		redditPosts:    20000,
		redditComments: 40000,
		imdbMovies:     12000,
		rmatBase:       10,
		rmatSteps:      5,
		motifVertices:  4000,
	}
}

var (
	wdcOnce  sync.Once
	wdcGraph map[bool]*graph.Graph
	wdcMu    sync.Mutex
)

// wdc returns the (cached) WDC-like graph for the run mode.
func wdc(quick bool) *graph.Graph {
	wdcMu.Lock()
	defer wdcMu.Unlock()
	if wdcGraph == nil {
		wdcGraph = make(map[bool]*graph.Graph)
	}
	if g, ok := wdcGraph[quick]; ok {
		return g
	}
	cfg := datagen.DefaultWDCConfig()
	cfg.NumVertices = sizesFor(quick).wdcVertices
	cfg.PlantExact = 15
	cfg.PlantPartial = 30
	cfg.PlantNearClique = 3
	g := datagen.WDC(cfg)
	wdcGraph[quick] = g
	return g
}

// reddit returns the Reddit-like graph.
func reddit(quick bool) *graph.Graph {
	sz := sizesFor(quick)
	cfg := datagen.DefaultRedditConfig()
	cfg.NumAuthors = sz.redditAuthors
	cfg.NumPosts = sz.redditPosts
	cfg.NumComments = sz.redditComments
	return datagen.Reddit(cfg)
}

// imdb returns the IMDb-like graph.
func imdb(quick bool) *graph.Graph {
	sz := sizesFor(quick)
	cfg := datagen.DefaultIMDbConfig()
	cfg.NumMovies = sz.imdbMovies
	return datagen.IMDb(cfg)
}
