package main

import (
	"fmt"
	"io"

	"approxmatch/internal/datagen"
	"approxmatch/internal/graph"
)

// expDatasets prints the dataset inventory (the analogue of the paper's §5
// dataset table), all synthetic stand-ins generated deterministically.
func expDatasets(w io.Writer, quick bool) {
	sz := sizesFor(quick)
	type entry struct {
		name  string
		kind  string
		build func() *graph.Graph
	}
	entries := []entry{
		{"WDC-like", "webgraph, Zipf domain labels, planted WDC instances", func() *graph.Graph { return wdc(quick) }},
		{"Reddit-like", "typed social graph (author/post/comment/subreddit)", func() *graph.Graph { return reddit(quick) }},
		{"IMDb-like", "bipartite movie metadata", func() *graph.Graph { return imdb(quick) }},
		{"CiteSeer-like", "small sparse citation graph", datagen.CiteSeerLike},
		{"YouTube-like", "skewed social graph (scaled)", func() *graph.Graph { return datagen.PowerLaw(sz.motifVertices*2, 5, 104) }},
		{"LiveJournal-like", "denser social graph (scaled)", func() *graph.Graph { return datagen.PowerLaw(sz.motifVertices*2, 7, 105) }},
		{"R-MAT (largest)", "Graph500 R-MAT, degree labels", func() *graph.Graph {
			return datagen.RMATGraph(sz.rmatBase + sz.rmatSteps - 1)
		}},
	}
	var rows [][]string
	for _, e := range entries {
		s := graph.ComputeStats(e.build())
		rows = append(rows, []string{
			e.name, e.kind,
			fmt.Sprintf("%d", s.NumVertices),
			fmt.Sprintf("%d", s.NumEdges),
			fmt.Sprintf("%d", s.MaxDegree),
			fmt.Sprintf("%.1f", s.AvgDegree),
			fmt.Sprintf("%.1f", s.StdevDegree),
			fmt.Sprintf("%d", s.NumLabels),
		})
	}
	table(w, []string{"dataset", "type", "|V|", "|E|", "dmax", "davg", "dstdev", "labels"}, rows)
}
